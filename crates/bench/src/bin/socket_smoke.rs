//! Socket-transport smoke run: a real multi-process TCP world as a CI
//! gate. Four single-rank OS processes rendezvous over loopback
//! (ephemeral ports, no fixed addresses — concurrent CI jobs cannot
//! collide), run pipelined *verified* allreduce epochs, and then the
//! parent injects the one fault no in-process harness can fake: it
//! SIGKILLs a rank mid-epoch and requires every survivor to observe a
//! *typed* transport error — never a hang, never a wrong aggregate.
//! A third scenario repeats the kill with
//! [`PeerDeadPolicy::ShrinkAndContinue`] enabled: the three survivors
//! must *absorb* the death — agree on the shrunk membership, rebase
//! keys, and keep producing bit-exact survivor-set aggregates — and
//! their heartbeat/eviction telemetry must be live.
//!
//! Exit codes (parent), chosen so CI logs distinguish the failure class
//! at a glance:
//!
//! | code | meaning                                                    |
//! |------|------------------------------------------------------------|
//! | 0    | all scenarios passed                                       |
//! | 1    | infrastructure: spawn/rendezvous/unexpected child status   |
//! | 2    | wrong answer (or wrong error class) on some rank           |
//! | 3    | hang: the launcher watchdog had to kill the tree           |
//! | 4    | fault not observed: survivors finished despite the kill    |
//!
//! The children are this same binary (`HEAR_RANK` set by the launcher
//! selects the rank body); `HEAR_SOCKET_SMOKE_MODE` selects the scenario.

use hear::core::{Backend, CommKeys, Homac, IntSumScheme};
use hear::layer::{
    EngineCfg, EngineError, MembershipChange, PeerDeadPolicy, ReduceAlgo, RetryPolicy, SecureComm,
};
use hear::mpi::{launch, Launcher};
use hear::telemetry::{Metric, Registry};
use std::process::ExitCode;
use std::time::Duration;

const WORLD: usize = 4;
const LEN: usize = 64;
const BLOCK: usize = 16;
const SEED: u64 = 0x50CE;
/// Epochs in the clean scenario.
const CLEAN_EPOCHS: usize = 5;
/// Kill scenario: epochs × pause ≈ 800 ms of epoch loop on every rank.
const KILL_EPOCHS: usize = 40;
const KILL_EPOCH_PAUSE: Duration = Duration::from_millis(20);
/// When the parent pulls the trigger on rank 3 (mid-loop, ~150 ms in).
const KILL_AT: Duration = Duration::from_millis(150);
/// Whole-tree watchdog; a hang at rendezvous or mid-epoch exits 3.
const WATCHDOG: Duration = Duration::from_secs(120);

const MODE_ENV: &str = "HEAR_SOCKET_SMOKE_MODE";

fn inputs_for(rank: usize, world: usize) -> (Vec<u32>, Vec<u32>) {
    let input = (0..LEN)
        .map(|j| {
            (j as u32)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(rank as u32)
        })
        .collect();
    let expected = (0..LEN)
        .map(|j| {
            (0..world).fold(0u32, |acc, r| {
                acc.wrapping_add((j as u32).wrapping_mul(0x9E37_79B9).wrapping_add(r as u32))
            })
        })
        .collect();
    (input, expected)
}

/// The engine config under test: pipelined chunking, HoMAC verification,
/// ring algorithm, and a retry deadline derived from the *measured*
/// socket RTT so the budget is honest on loaded CI machines.
fn epoch_cfg(comm: &hear::mpi::Communicator) -> EngineCfg {
    let attempt = (comm.transport_rtt() * 1000).max(Duration::from_millis(200));
    EngineCfg::pipelined(BLOCK)
        .verified()
        .with_algo(ReduceAlgo::Ring)
        .with_retry(
            RetryPolicy::retries(1)
                .with_backoff(Duration::from_millis(2))
                .with_attempt_timeout(attempt),
        )
}

fn child_secure_comm(rank: usize) -> Result<(hear::mpi::Communicator, SecureComm), String> {
    let comm = launch::child_comm()
        .ok_or("launcher env missing")?
        .map_err(|e| format!("rendezvous failed: {e}"))?;
    let world = comm.world();
    let keys = CommKeys::generate(world, SEED, Backend::best_available())
        .into_iter()
        .nth(rank)
        .ok_or("rank out of key range")?;
    let homac = Homac::generate(SEED ^ 0x5a5a, Backend::best_available());
    let sc = SecureComm::new(comm.clone(), keys).with_homac(homac);
    Ok((comm, sc))
}

/// Clean scenario rank body: epochs must all verify and agree.
fn child_clean(rank: usize) -> ExitCode {
    let (comm, mut sc) = match child_secure_comm(rank) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("[socket_smoke rank {rank}] infra: {e}");
            return ExitCode::from(1);
        }
    };
    let (input, expected) = inputs_for(rank, comm.world());
    let mut s = IntSumScheme::<u32>::default();
    for epoch in 0..CLEAN_EPOCHS {
        match sc.allreduce_with(&mut s, &input, epoch_cfg(&comm)) {
            Ok(got) if got == expected => {}
            Ok(_) => {
                eprintln!("[socket_smoke rank {rank}] epoch {epoch}: wrong aggregate");
                return ExitCode::from(2);
            }
            Err(e) => {
                eprintln!("[socket_smoke rank {rank}] epoch {epoch}: unexpected error {e}");
                return ExitCode::from(2);
            }
        }
    }
    // Synchronize before teardown: no rank drops its sockets while a
    // peer is still mid-epoch.
    comm.barrier();
    ExitCode::SUCCESS
}

/// Kill scenario rank body: loop epochs until the injected death shows
/// up. Dying (rank 3) is handled by SIGKILL; survivors must see a typed
/// `CommError` — completing all epochs means the fault was *absorbed
/// silently*, which is its own failure (exit 4).
fn child_kill(rank: usize) -> ExitCode {
    let (comm, mut sc) = match child_secure_comm(rank) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("[socket_smoke rank {rank}] infra: {e}");
            return ExitCode::from(1);
        }
    };
    let (input, expected) = inputs_for(rank, comm.world());
    let mut s = IntSumScheme::<u32>::default();
    for epoch in 0..KILL_EPOCHS {
        match sc.allreduce_with(&mut s, &input, epoch_cfg(&comm)) {
            Ok(got) if got == expected => std::thread::sleep(KILL_EPOCH_PAUSE),
            Ok(_) => {
                eprintln!("[socket_smoke rank {rank}] epoch {epoch}: wrong aggregate");
                return ExitCode::from(2);
            }
            // The typed failure we are here to see.
            Err(EngineError::Comm(e)) => {
                eprintln!("[socket_smoke rank {rank}] epoch {epoch}: observed typed fault: {e}");
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("[socket_smoke rank {rank}] epoch {epoch}: wrong error class: {e}");
                return ExitCode::from(2);
            }
        }
    }
    eprintln!("[socket_smoke rank {rank}] completed all epochs despite the kill");
    ExitCode::from(4)
}

/// [`epoch_cfg`] with the shrink-and-continue reaction enabled — and a
/// roomier retry budget than the fail-fast scenarios. Here a timeout on
/// a *healthy* ring is not an acceptable outcome: it would surface as
/// an error (exit 2) or, worse, stall the rank long enough for its
/// peers to declare it dead and cascade a second eviction. Real kills
/// are detected by socket EOF, so the wider deadline does not slow the
/// drill's reaction to the SIGKILL.
fn shrink_cfg(comm: &hear::mpi::Communicator) -> EngineCfg {
    let attempt = (comm.transport_rtt() * 1000).max(Duration::from_millis(500));
    EngineCfg::pipelined(BLOCK)
        .verified()
        .with_algo(ReduceAlgo::Ring)
        .with_retry(
            RetryPolicy::retries(3)
                .with_backoff(Duration::from_millis(2))
                .with_attempt_timeout(attempt)
                .on_peer_dead(PeerDeadPolicy::ShrinkAndContinue),
        )
}

/// Shrink drill rank body: the same mid-loop SIGKILL as [`child_kill`],
/// but with `ShrinkAndContinue` enabled the death must be *absorbed*,
/// not surfaced. Every survivor must observe exactly one membership
/// change evicting the killed rank, then keep producing bit-exact
/// aggregates over the three survivors' contributions, with live
/// heartbeat and eviction telemetry (the parent sets `HEAR_TRACE=1`, so
/// the transport's counters land in the global registry). The epoch
/// loop stops a few epochs after the shrink: the collectives keep the
/// survivors in lockstep, so all of them tear down after the *same*
/// epoch and nobody yanks sockets from a peer still mid-collective.
fn child_shrink(rank: usize) -> ExitCode {
    let (comm, mut sc) = match child_secure_comm(rank) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("[socket_smoke rank {rank}] infra: {e}");
            return ExitCode::from(1);
        }
    };
    let (input, mut expected) = inputs_for(rank, comm.world());
    let survivor_expected = inputs_for(rank, WORLD - 1).1;
    let mut s = IntSumScheme::<u32>::default();
    let mut post_shrink_ok = 0usize;
    for epoch in 0..KILL_EPOCHS {
        match sc.allreduce_with(&mut s, &input, shrink_cfg(&comm)) {
            Ok(got) => {
                let changes = sc.take_membership_changes();
                if !changes.is_empty() {
                    let want = vec![MembershipChange {
                        epoch: 1,
                        evicted: vec![WORLD - 1],
                        old_world: WORLD,
                        new_world: WORLD - 1,
                    }];
                    if changes != want {
                        eprintln!(
                            "[socket_smoke rank {rank}] epoch {epoch}: \
                             unexpected membership change {changes:?}"
                        );
                        return ExitCode::from(2);
                    }
                    expected = survivor_expected.clone();
                }
                if got != expected {
                    eprintln!("[socket_smoke rank {rank}] epoch {epoch}: wrong aggregate");
                    return ExitCode::from(2);
                }
                if sc.is_shrunk() {
                    post_shrink_ok += 1;
                    if post_shrink_ok >= 3 {
                        break;
                    }
                }
                std::thread::sleep(KILL_EPOCH_PAUSE);
            }
            Err(e) => {
                eprintln!(
                    "[socket_smoke rank {rank}] epoch {epoch}: \
                     error surfaced instead of shrinking: {e}"
                );
                return ExitCode::from(2);
            }
        }
    }
    if post_shrink_ok == 0 {
        eprintln!("[socket_smoke rank {rank}] completed all epochs without observing the kill");
        return ExitCode::from(4);
    }
    let reg = Registry::global();
    for (metric, name) in [
        (Metric::HeartbeatsTotal, "hear_heartbeats_total"),
        (Metric::MembershipEpochs, "hear_membership_epochs_total"),
        (Metric::RanksEvicted, "hear_ranks_evicted_total"),
    ] {
        if reg.counter(metric) == 0 {
            eprintln!("[socket_smoke rank {rank}] telemetry counter {name} stayed zero");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

fn spawn_world(mode: &str) -> std::io::Result<hear::mpi::launch::Tree> {
    Launcher::new(WORLD)
        .watchdog(WATCHDOG)
        .env(MODE_ENV, mode)
        .spawn()
}

/// Map one finished tree onto the parent exit-code taxonomy.
/// `killed_rank` is exempt from the all-zero requirement (its SIGKILL
/// shows up as `None`).
fn grade(outcome: &hear::mpi::launch::Outcome, killed_rank: Option<usize>) -> Option<u8> {
    if outcome.watchdog_fired {
        return Some(3);
    }
    for (rank, code) in outcome.codes.iter().enumerate() {
        if Some(rank) == killed_rank {
            continue;
        }
        match code {
            Some(0) => {}
            Some(2) => return Some(2),
            Some(4) => return Some(4),
            _ => return Some(1),
        }
    }
    None
}

fn parent() -> ExitCode {
    // Scenario 1: clean pipelined verified epochs across 4 processes.
    let outcome = match spawn_world("clean") {
        Ok(tree) => tree.wait(),
        Err(e) => {
            eprintln!("[socket_smoke] spawn failed: {e}");
            return ExitCode::from(1);
        }
    };
    if let Some(code) = grade(&outcome, None) {
        eprintln!("[socket_smoke] clean scenario failed: {:?}", outcome.codes);
        return ExitCode::from(code);
    }
    println!("[socket_smoke] clean: {WORLD} processes, {CLEAN_EPOCHS} verified epochs OK");

    // Scenario 2: SIGKILL rank 3 mid-epoch; survivors must fail *typed*.
    let mut tree = match spawn_world("kill") {
        Ok(tree) => tree,
        Err(e) => {
            eprintln!("[socket_smoke] spawn failed: {e}");
            return ExitCode::from(1);
        }
    };
    std::thread::sleep(KILL_AT);
    tree.kill_rank(WORLD - 1);
    let outcome = tree.wait();
    if let Some(code) = grade(&outcome, Some(WORLD - 1)) {
        eprintln!("[socket_smoke] kill scenario failed: {:?}", outcome.codes);
        return ExitCode::from(code);
    }
    println!("[socket_smoke] kill: survivors saw typed PeerDead/Timeout OK");

    // Scenario 3: the same SIGKILL, but with shrink-and-continue enabled
    // the survivors must reconfigure around the corpse and keep going.
    let mut tree = match Launcher::new(WORLD)
        .watchdog(WATCHDOG)
        .env(MODE_ENV, "shrink")
        .env("HEAR_TRACE", "1")
        .allow_shrink()
        .spawn()
    {
        Ok(tree) => tree,
        Err(e) => {
            eprintln!("[socket_smoke] spawn failed: {e}");
            return ExitCode::from(1);
        }
    };
    std::thread::sleep(KILL_AT);
    tree.kill_rank(WORLD - 1);
    let outcome = tree.wait();
    if let Some(code) = grade(&outcome, Some(WORLD - 1)) {
        eprintln!("[socket_smoke] shrink scenario failed: {:?}", outcome.codes);
        return ExitCode::from(code);
    }
    println!(
        "[socket_smoke] shrink: survivors reconfigured to world {} and continued OK",
        WORLD - 1
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    match launch::child_rank() {
        Some(rank) => match std::env::var(MODE_ENV).as_deref() {
            Ok("clean") => child_clean(rank),
            Ok("kill") => child_kill(rank),
            Ok("shrink") => child_shrink(rank),
            other => {
                eprintln!("[socket_smoke rank {rank}] bad {MODE_ENV}: {other:?}");
                ExitCode::from(1)
            }
        },
        None => parent(),
    }
}
