//! Figure 3 regenerator: relative precision loss of the HFP float schemes
//! against FP16/FP32/FP64, for addition and multiplication, at
//! γ ∈ {0, 1, 2}, with the native float as baseline and a 1024-bit
//! BigFloat (MPFR-substitute) reference — the paper's exact methodology
//! (§5.3.2–5.3.3, 10k-element sums, exponentially sampled values).
//!
//! `HEAR_SCALE=full` multiplies trials ×10.

use hear::core::{Backend, CommKeys, FloatProd, FloatSum, Hfp, HfpFormat};
use hear::hfp::F16;
use hear::num::{BigFloat, REFERENCE_PREC};
use hear_bench::{exp_sampled_values, scale_factor, stats};

struct Dtype {
    name: &'static str,
    le: u32,
    lm: u32,
    /// Exponent sampling range keeping ADD-chain sums inside the type.
    lo: i32,
    hi: i32,
}

const DTYPES: [Dtype; 3] = [
    Dtype {
        name: "FP16",
        le: 5,
        lm: 10,
        lo: -4,
        hi: 4,
    },
    Dtype {
        name: "FP32",
        le: 8,
        lm: 23,
        lo: -16,
        hi: 16,
    },
    Dtype {
        name: "FP64",
        le: 11,
        lm: 52,
        lo: -64,
        hi: 64,
    },
];

fn reference_sum(vals: &[f64]) -> f64 {
    let mut acc = BigFloat::zero(REFERENCE_PREC);
    for v in vals {
        acc = acc.add(&BigFloat::from_f64(*v, REFERENCE_PREC));
    }
    acc.to_f64()
}

/// Native summation in the target precision.
fn native_sum(d: &Dtype, vals: &[f64]) -> f64 {
    match d.name {
        "FP16" => {
            let mut acc = F16::ZERO;
            for v in vals {
                acc = acc.add(F16::from_f64(*v));
            }
            acc.to_f64()
        }
        "FP32" => vals.iter().fold(0.0f32, |a, v| a + *v as f32) as f64,
        _ => vals.iter().sum(),
    }
}

/// Clamp γ so fp64 ciphertext mantissas stay within the u64 significand
/// (ciphertext mantissa = lm − δ + γ ≤ 52).
fn clamp_gamma(d: &Dtype, delta: u32, gamma: u32) -> u32 {
    gamma.min(52 + delta - d.lm)
}

/// HEAR addition: the N summands form one summation chain — as if N ranks
/// reduced element 0 of their vectors — so every ciphertext carries the
/// SAME noise `F(kc + 0)` (Eq. 7 / §5.3.5: "all the numbers within one
/// summation chain need to be scaled with the same random number").
fn hear_sum(d: &Dtype, gamma: u32, vals: &[f64], keys: &CommKeys) -> f64 {
    let fmt = HfpFormat::new(d.le, d.lm, 2, clamp_gamma(d, 2, gamma));
    let scheme = FloatSum::new(fmt);
    let (cew, cmw) = fmt.cipher_widths();
    let mut agg = Hfp::zero(cew, cmw);
    let mut ct = Vec::new();
    for v in vals {
        scheme
            .encrypt_f64(keys, 0, &[*v], &mut ct)
            .expect("in range");
        agg = FloatSum::combine(&agg, &ct[0]);
    }
    let mut out = Vec::new();
    scheme.decrypt_f64(keys, 0, std::slice::from_ref(&agg), &mut out);
    out[0]
}

/// Multiplication column: values pass encrypt→decrypt through the MUL
/// scheme; the decrypted values are then summed natively so the metric is
/// comparable with the addition column (the paper's pass-through loss).
fn hear_mul_passthrough_sum(d: &Dtype, gamma: u32, vals: &[f64], keys: &CommKeys) -> f64 {
    let fmt = HfpFormat::new(d.le, d.lm, 0, clamp_gamma(d, 0, gamma));
    let scheme = FloatProd::new(fmt);
    let (mut ct, mut out) = (Vec::new(), Vec::new());
    scheme
        .encrypt_f64(keys, 0, vals, &mut ct)
        .expect("in range");
    scheme.decrypt_f64(keys, 0, &ct, &mut out);
    out.iter().sum()
}

fn main() {
    let trials = 8 * scale_factor();
    let n = 10_000;
    println!("# Figure 3: relative precision loss (|result − reference| / |reference|)");
    println!("# {n}-element sums, {trials} trials, 1024-bit BigFloat reference");
    println!(
        "{:<5} {:<14} {:<10} {:>14} {:>14}",
        "type", "operation", "variant", "mean rel err", "std"
    );
    let keys = CommKeys::generate(1, 0xF16, Backend::best_available())
        .into_iter()
        .next()
        .unwrap();
    for d in &DTYPES {
        for op in ["Addition", "Multiplication"] {
            let mut rows: Vec<(&str, Vec<f64>)> = vec![
                ("Native", Vec::new()),
                ("HEAR g=2", Vec::new()),
                ("HEAR g=1", Vec::new()),
                ("HEAR g=0", Vec::new()),
            ];
            for trial in 0..trials {
                let vals = exp_sampled_values(n, d.lo..d.hi, 0xABC0 + trial as u64);
                let reference = reference_sum(&vals);
                let err = |x: f64| ((x - reference) / reference).abs();
                rows[0].1.push(err(native_sum(d, &vals)));
                for (i, gamma) in [2u32, 1, 0].iter().enumerate() {
                    let v = if op == "Addition" {
                        hear_sum(d, *gamma, &vals, &keys)
                    } else {
                        hear_mul_passthrough_sum(d, *gamma, &vals, &keys)
                    };
                    rows[i + 1].1.push(err(v));
                }
            }
            for (variant, errs) in &rows {
                let s = stats(errs);
                println!(
                    "{:<5} {:<14} {:<10} {:>14.3e} {:>14.3e}",
                    d.name, op, variant, s.mean, s.std
                );
            }
        }
    }
    println!("# Paper shape check: HEAR within ~an order of magnitude of native;");
    println!(
        "# gamma=2 best, gamma=0 worst (addition); multiplication gamma-insensitive (delta=0)."
    );
}
