//! §5.3.1 experiment: the MAP (maximum a posteriori) ciphertext-only
//! adversary against HFP mantissas — exact enumeration at increasing
//! widths, showing the edge ratio is a small width-stable constant (the
//! paper reports avg 3.57e-7 vs uniform 1.19e-7 ≈ 3x at FP32 widths).

use hear::core::map_adversary;

fn main() {
    println!("# MAP adversary success probability (exact enumeration)");
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12} {:>7}",
        "widths (x/f/c)", "avg", "max", "min", "uniform", "edge"
    );
    let mut last = None;
    for mw in [6u32, 8, 10, 12] {
        let s = map_adversary(mw, mw, mw);
        println!(
            "{:<18} {:>12.4e} {:>12.4e} {:>12.4e} {:>12.4e} {:>6.2}x",
            format!("{mw}/{mw}/{mw}"),
            s.avg,
            s.max,
            s.min,
            s.uniform,
            s.edge_ratio()
        );
        last = Some(s);
    }
    let s = last.unwrap();
    println!(
        "\n# extrapolation to FP32 (23-bit mantissas): edge ratio stays ≈{:.1}x, so",
        s.edge_ratio()
    );
    println!(
        "# avg ≈ {:.2e} vs uniform 2^-23 = 1.19e-7 — same conclusion as the paper's",
        s.edge_ratio() / f64::powi(2.0, 23)
    );
    println!("# 3.57e-7: the adversary gains only a negligible constant-factor edge,");
    println!("# and the attack cost grows exponentially with γ (COA security).");
    println!("\n# gamma sensitivity (wider noise/ciphertext mantissas):");
    for gamma in [0u32, 1, 2] {
        let s = map_adversary(8, 8 + gamma, 8 + gamma);
        println!(
            "#   gamma={gamma}: avg {:.4e} (edge {:.2}x)",
            s.avg,
            s.edge_ratio()
        );
    }
}
