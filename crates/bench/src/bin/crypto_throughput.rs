//! Mask/unmask throughput: fused one-pass kernels vs the split
//! fill-then-combine path, per PRF backend × word width, on a 64 KiB
//! payload. Emits `BENCH_crypto.json` (the per-commit crypto trajectory)
//! and doubles as the `perf_gate` driver for `scripts/ci.sh`:
//!
//! ```text
//! crypto_throughput            # full sweep, writes BENCH_crypto.json
//! crypto_throughput --gate     # fused must not be slower than split
//! ```
//!
//! The split path is what every scheme did before the fused kernels:
//! `keystream_*` into a scratch vector, then a second wrapping-add pass —
//! two passes over the payload, three over the keystream. The fused path
//! ([`hear::prf::kernels`]) folds each PRF block into the payload as it is
//! generated, so the keystream never exists in memory; on AES-NI the
//! blocks stay in SSE registers through the 8-wide pipeline. `HEAR_SCALE`
//! and `HEAR_BENCH_FAST` budgets apply as for every other bench target.

use criterion::{black_box, Criterion, Throughput};
use hear::prf::kernels::add_keystream_into;
use hear::prf::{keystream_u16, keystream_u32, keystream_u64, keystream_u8, Backend, PrfCipher};

/// Small payload: 64 KiB, the Fig. 5 sweet spot (big enough to leave L1,
/// small enough that every backend finishes a sample fast).
const PAYLOAD_BYTES: usize = 64 * 1024;

/// Large payload: 4 MiB, past last-level cache, where the split path's
/// extra keystream round trip costs real memory bandwidth — the gradient
/// regime of §7.2. AES-NI only (the software backends would take seconds
/// per sample and their ratio is compute-bound anyway).
const BIG_PAYLOAD_BYTES: usize = 4 * 1024 * 1024;

/// `--gate` tolerance: fused may be at most this factor slower than split
/// before the gate fails. Generous because CI shares one loaded core; on
/// idle hardware fused wins outright (that 1.5×+ margin is what
/// `BENCH_crypto.json` tracks).
const GATE_TOLERANCE: f64 = 1.25;

macro_rules! bench_width {
    ($g:expr, $prf:expr, $bytes:expr, $ty:ty, $split:path) => {{
        let n = $bytes / std::mem::size_of::<$ty>();
        let base: u128 = 0x5eed_0000;
        let mut payload: Vec<$ty> = (0..n).map(|j| j as $ty).collect();
        let mut scratch: Vec<$ty> = vec![0; n];
        let bits = 8 * std::mem::size_of::<$ty>();
        $g.bench_function(format!("u{bits}/fused"), |b| {
            b.iter(|| {
                add_keystream_into($prf, base, 0, &mut payload[..]);
                black_box(payload[0]);
            })
        });
        $g.bench_function(format!("u{bits}/split"), |b| {
            b.iter(|| {
                $split($prf, base, 0, &mut scratch[..]);
                for (p, k) in payload.iter_mut().zip(scratch.iter()) {
                    *p = p.wrapping_add(*k);
                }
                black_box(payload[0]);
            })
        });
    }};
}

fn backends() -> Vec<Backend> {
    [
        Backend::Sha1,
        Backend::Sha1Ni,
        Backend::AesSoft,
        Backend::AesNi,
    ]
    .into_iter()
    .filter(|b| b.is_available())
    .collect()
}

fn sweep(c: &mut Criterion) {
    for backend in backends() {
        let prf = PrfCipher::new(backend, 0xC0FFEE).expect("backend was filtered for availability");
        let mut g = c.benchmark_group(format!("mask_64KiB/{backend:?}"));
        g.throughput(Throughput::Bytes(PAYLOAD_BYTES as u64));
        bench_width!(g, &prf, PAYLOAD_BYTES, u8, keystream_u8);
        bench_width!(g, &prf, PAYLOAD_BYTES, u16, keystream_u16);
        bench_width!(g, &prf, PAYLOAD_BYTES, u32, keystream_u32);
        bench_width!(g, &prf, PAYLOAD_BYTES, u64, keystream_u64);
        g.finish();
    }
    if Backend::AesNi.is_available() {
        let prf = PrfCipher::new(Backend::AesNi, 0xC0FFEE).expect("availability checked");
        let mut g = c.benchmark_group("mask_4MiB/AesNi");
        g.throughput(Throughput::Bytes(BIG_PAYLOAD_BYTES as u64));
        bench_width!(g, &prf, BIG_PAYLOAD_BYTES, u8, keystream_u8);
        bench_width!(g, &prf, BIG_PAYLOAD_BYTES, u16, keystream_u16);
        bench_width!(g, &prf, BIG_PAYLOAD_BYTES, u32, keystream_u32);
        bench_width!(g, &prf, BIG_PAYLOAD_BYTES, u64, keystream_u64);
        g.finish();
    }
}

/// `--gate`: fused u32 masking on the best backend must not be slower
/// than the split path, within [`GATE_TOLERANCE`]. Best-of-3 attempts
/// because the CI core is shared and a single descheduled sample can
/// invert a close race.
fn run_gate() -> ! {
    let backend = Backend::best_available();
    let mut worst = f64::INFINITY;
    for attempt in 1..=3 {
        let mut c = Criterion::default();
        let prf = PrfCipher::new(backend, 0xC0FFEE).expect("best backend always constructs");
        let mut g = c.benchmark_group("gate");
        g.throughput(Throughput::Bytes(PAYLOAD_BYTES as u64));
        bench_width!(g, &prf, PAYLOAD_BYTES, u32, keystream_u32);
        g.finish();
        let fused = c.stats("gate/u32/fused").expect("recorded").median_ns;
        let split = c.stats("gate/u32/split").expect("recorded").median_ns;
        let ratio = fused / split;
        println!(
            "perf_gate[{backend:?}] attempt {attempt}: fused {fused:.0} ns vs split \
             {split:.0} ns per 64 KiB (fused/split = {ratio:.3}, limit {GATE_TOLERANCE})"
        );
        if ratio <= GATE_TOLERANCE {
            println!(
                "perf_gate: OK (fused is {:.2}x the split path)",
                1.0 / ratio
            );
            std::process::exit(0);
        }
        worst = worst.min(ratio);
    }
    eprintln!(
        "perf_gate: FAIL — fused mask path is {worst:.3}x the split path \
         (limit {GATE_TOLERANCE}); the one-pass kernels have regressed"
    );
    std::process::exit(1);
}

fn main() {
    if std::env::args().any(|a| a == "--gate") {
        run_gate();
    }
    let mut c = Criterion::default();
    sweep(&mut c);
    c.emit("crypto");
}
