//! Table 1 regenerator: the encryption-scheme comparison against the four
//! design requirements (§3) — with the PHE baselines *measured live* from
//! this repository's own implementations rather than quoted.

use hear::baselines::{ElGamal, Paillier, Rsa, TABLE1};
use hear::core::Backend;
use hear::num::{BigUint, SplitMix64};
use hear_bench::measure_backend;
use std::time::Instant;

fn time_us<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64() * 1e6)
}

fn main() {
    println!("# Table 1: scheme comparison on the HEAR design requirements");
    println!("# R1: ≤2x ciphertext inflation   R2: unlimited operations");
    println!("# R3: low operation complexity   R4: many operation types");
    println!(
        "{:<6} {:<28} {:^4} {:^4} {:^4} {:^4} {:>9}",
        "family", "scheme", "R1", "R2", "R3", "R4", "measured"
    );
    for row in TABLE1 {
        println!(
            "{:<6} {:<28} {:^4} {:^4} {:^4} {:^4} {:>9}",
            row.family,
            row.scheme,
            row.r1_inflation.to_string(),
            row.r2_operations.to_string(),
            row.r3_complexity.to_string(),
            row.r4_op_types.to_string(),
            if row.measured_here { "yes" } else { "lit." }
        );
    }

    println!("\n# Live measurements backing the PHE rows (1024-bit keys, 32-bit plaintexts):");
    let mut rng = SplitMix64::new(0x7AB1E);
    let m = BigUint::from_u64(123_456_789);

    let (p, kg) = time_us(|| Paillier::generate(1024, &mut rng));
    let (c, enc) = time_us(|| p.encrypt(&m, &mut rng));
    let (_, op) = time_us(|| p.add_ciphertexts(&c, &c));
    let (_, dec) = time_us(|| p.decrypt(&c));
    println!(
        "Paillier: inflation {:>5.0}x | keygen {kg:>9.0}µs enc {enc:>8.0}µs op {op:>6.1}µs dec {dec:>8.0}µs",
        p.inflation(32)
    );

    let (r, kg) = time_us(|| Rsa::generate(1024, &mut rng));
    let (c, enc) = time_us(|| r.encrypt(&m));
    let (_, op) = time_us(|| r.mul_ciphertexts(&c, &c));
    let (_, dec) = time_us(|| r.decrypt(&c));
    println!(
        "RSA     : inflation {:>5.0}x | keygen {kg:>9.0}µs enc {enc:>8.0}µs op {op:>6.1}µs dec {dec:>8.0}µs",
        r.inflation(32)
    );

    let (e, kg) = time_us(|| ElGamal::generate(512, &mut rng));
    let (c, enc) = time_us(|| e.encrypt(&m, &mut rng));
    let (_, op) = time_us(|| e.mul_ciphertexts(&c, &c));
    let (_, dec) = time_us(|| e.decrypt(&c));
    println!(
        "ElGamal : inflation {:>5.0}x | keygen {kg:>9.0}µs enc {enc:>8.0}µs op {op:>6.1}µs dec {dec:>8.0}µs",
        e.inflation(32)
    );

    let h = measure_backend(Backend::best_available(), 1024 * 1024, 4).unwrap();
    println!(
        "HEAR    : inflation     1x | keygen      ~1µs  enc {:>7.4}µs/word op wire-speed dec {:>7.4}µs/word",
        4.0 / h.enc_bps * 1e6,
        4.0 / h.dec_bps * 1e6
    );
    println!(
        "# (HEAR per-word times are amortized from {:.2} GB/s enc / {:.2} GB/s dec)",
        h.enc_bps / 1e9,
        h.dec_bps / 1e9
    );
    println!("# FHE rows (TFHE/CKKS) are literature values: ms–s per op, large keys.");
}
