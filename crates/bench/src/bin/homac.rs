//! §5.5 experiment: HoMAC result-verification cost — tag generation /
//! verification throughput, wire inflation, and a live tamper-detection
//! demonstration.

use hear::core::{Backend, CommKeys, Homac, IntSum, Scratch};
use hear_bench::scale_factor;
use std::time::Instant;

fn main() {
    let n = 262_144 * scale_factor();
    // A one-rank communicator: the rank's ciphertext IS the complete
    // aggregate, so tag+verify can be timed without a network in the loop.
    let keys = CommKeys::generate(1, 0x5E5, Backend::best_available());
    let homac = Homac::generate(0xFACE, Backend::best_available());
    let mut scratch = Scratch::with_capacity(n);

    let mut ct: Vec<u32> = (0..n as u32).collect();
    IntSum::encrypt_in_place(&keys[0], 0, &mut ct, &mut scratch);

    let t0 = Instant::now();
    let tags = homac.tag(&keys[0], 0, &ct);
    let tag_rate = n as f64 * 4.0 / t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let ok = homac.verify(&keys[0], 0, &ct, &tags);
    let verify_rate = n as f64 * 4.0 / t0.elapsed().as_secs_f64();

    println!("# §5.5 HoMAC: homomorphic result verification");
    println!(
        "tag generation : {:>8.3} GB/s of 32-bit ciphertext words",
        tag_rate / 1e9
    );
    println!("verification   : {:>8.3} GB/s", verify_rate / 1e9);
    println!(
        "wire inflation : {}x for 32-bit data, {}x for 64-bit (61-bit prime field tags)",
        Homac::inflation_for_width(32),
        Homac::inflation_for_width(64)
    );
    println!("honest aggregate verifies: {ok}");

    let mut tampered = ct.clone();
    tampered[n / 2] ^= 4;
    println!(
        "single flipped bit detected: {}",
        !homac.verify(&keys[0], 0, &tampered, &tags)
    );
    println!("# paper: >200% inflation for a 64-bit p — our 61-bit field matches that cost.");
}
