//! Figure 6 regenerator: 16 MiB encrypted allreduce throughput per rank
//! versus the Iallreduce pipelining block size, against the native
//! (unencrypted, equally pipelined — Cray MPICH pipelines internally)
//! runtime and the non-pipelined synchronous variant.
//!
//! The fabric's α–β delay model is calibrated from a real TCP loopback
//! probe on this host ([`hear::net::measure_loopback_default`]) so model
//! predictions and socket-backend measurements share a baseline; if the
//! probe fails (no loopback in the sandbox) the paper's hard-coded Aries
//! per-rank constants are used instead. Which source won is printed and
//! recorded in `BENCH_fig6.json`. Per-link bandwidth serialization makes
//! overlap physical. Paper optimum: 131–262 KiB at ~86 % of native.
//! `HEAR_SCALE=full` multiplies repetitions ×10.

use hear::core::{Backend, CommKeys};
use hear::layer::SecureComm;
use hear::mpi::{Communicator, NetConfig, SimConfig, Simulator};
use hear_bench::scale_factor;
use std::collections::VecDeque;
use std::io::Write as _;
use std::time::Instant;

const MSG_BYTES: usize = 16 * 1024 * 1024;
const ELEMS: usize = MSG_BYTES / 4;

fn secure(comm: &Communicator) -> SecureComm {
    let keys = CommKeys::generate(comm.world(), 0xF19, Backend::best_available())
        .into_iter()
        .nth(comm.rank())
        .unwrap();
    SecureComm::new(comm.clone(), keys)
}

/// Plain (unencrypted) pipelined ring allreduce over blocks — the
/// Cray-MPICH-equivalent baseline at the same block size.
fn native_pipelined(comm: &Communicator, data: &[u32], block_elems: usize) -> Vec<u32> {
    let mut out = vec![0u32; data.len()];
    let mut inflight: VecDeque<(usize, hear::mpi::Request<Vec<u32>>)> = VecDeque::new();
    let mut offset = 0usize;
    while offset < data.len() {
        let end = (offset + block_elems).min(data.len());
        let buf = data[offset..end].to_vec();
        inflight.push_back((
            offset,
            comm.iallreduce_ring(buf, |a: &u32, b: &u32| a.wrapping_add(*b)),
        ));
        if inflight.len() >= 2 {
            let (o, req) = inflight.pop_front().unwrap();
            let agg = req.wait();
            out[o..o + agg.len()].copy_from_slice(&agg);
        }
        offset = end;
    }
    while let Some((o, req)) = inflight.pop_front() {
        let agg = req.wait();
        out[o..o + agg.len()].copy_from_slice(&agg);
    }
    out
}

/// The fabric delay model and where its parameters came from: the live
/// loopback probe when it works, the paper's Aries constants otherwise.
fn net_model() -> (NetConfig, &'static str) {
    match hear::net::measure_loopback_default() {
        Ok(link) => (
            NetConfig {
                alpha: link.alpha,
                beta_ns_per_byte: 1e9 / link.bandwidth,
            },
            "loopback-probe",
        ),
        Err(_) => (NetConfig::aries_per_rank(), "aries-paper-default"),
    }
}

fn emit_json(net_source: &str, net: &NetConfig, rows: &[String]) {
    let dir = std::env::var("HEAR_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_fig6.json");
    let json = format!(
        "{{\n  \"bench\": \"fig6\",\n  \"net_source\": \"{net_source}\",\n  \
         \"alpha_ns\": {},\n  \"beta_ns_per_byte\": {:.4},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        net.alpha.as_nanos(),
        net.beta_ns_per_byte,
        rows.join(",\n    ")
    );
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(json.as_bytes());
    }
}

fn main() {
    let reps = scale_factor();
    let (net, net_source) = net_model();
    let cfg = SimConfig::default().with_net(net);
    let data: Vec<u32> = (0..ELEMS as u32).collect();
    let mut rows: Vec<String> = Vec::new();

    println!("# Figure 6: 16 MiB encrypted allreduce, 2 ranks");
    println!(
        "# delay model [{net_source}]: alpha {} ns, beta {:.3} ns/B",
        net.alpha.as_nanos(),
        net.beta_ns_per_byte
    );
    println!(
        "{:<16} {:>13} {:>13} {:>12}",
        "block size [B]", "HEAR GB/s", "native GB/s", "% of native"
    );

    // Naive synchronous variant (one bar in the paper's figure) vs native
    // pipelined at the paper's optimal block.
    let data_sync = data.clone();
    let (t_sync, t_nat_opt) = {
        let r = Simulator::with_config(2, cfg.clone()).run(move |comm| {
            let mut sc = secure(comm);
            let t0 = Instant::now();
            for _ in 0..reps {
                let _ = sc.allreduce_sum_u32_blocked_sync(&data_sync, ELEMS);
            }
            let t_sync = t0.elapsed().as_secs_f64() / reps as f64;
            let t0 = Instant::now();
            for _ in 0..reps {
                let _ = native_pipelined(comm, &data_sync, 131_072 / 4);
            }
            (t_sync, t0.elapsed().as_secs_f64() / reps as f64)
        });
        r[0]
    };
    let sync_tput = MSG_BYTES as f64 / t_sync / 1e9;
    let nat_opt_tput = MSG_BYTES as f64 / t_nat_opt / 1e9;
    println!(
        "{:<16} {:>13.3} {:>13.3} {:>11.1}%",
        "naive (sync)",
        sync_tput,
        nat_opt_tput,
        100.0 * sync_tput / nat_opt_tput
    );
    rows.push(format!(
        "{{\"variant\":\"sync\",\"hear_gbps\":{sync_tput:.4},\"native_gbps\":{nat_opt_tput:.4}}}"
    ));

    // Pipelined sweep over block sizes (bytes), 4 KiB … 4 MiB, HEAR and
    // native at the SAME block size.
    for shift in 12..=22 {
        let block_bytes = 1usize << shift;
        let block_elems = block_bytes / 4;
        let data_b = data.clone();
        let (t_hear, t_native) = Simulator::with_config(2, cfg.clone()).run(move |comm| {
            let mut sc = secure(comm);
            let t0 = Instant::now();
            for _ in 0..reps {
                let _ = sc.allreduce_sum_u32_pipelined(&data_b, block_elems);
            }
            let t_hear = t0.elapsed().as_secs_f64() / reps as f64;
            let t0 = Instant::now();
            for _ in 0..reps {
                let _ = native_pipelined(comm, &data_b, block_elems);
            }
            (t_hear, t0.elapsed().as_secs_f64() / reps as f64)
        })[0];
        let hear_tput = MSG_BYTES as f64 / t_hear / 1e9;
        let native_tput = MSG_BYTES as f64 / t_native / 1e9;
        println!(
            "{:<16} {:>13.3} {:>13.3} {:>11.1}%",
            block_bytes,
            hear_tput,
            native_tput,
            100.0 * hear_tput / native_tput
        );
        rows.push(format!(
            "{{\"variant\":\"pipelined\",\"block_bytes\":{block_bytes},\
             \"hear_gbps\":{hear_tput:.4},\"native_gbps\":{native_tput:.4}}}"
        ));
    }
    emit_json(net_source, &net, &rows);
    println!("# paper shape: HEAR throughput rises with block size, peaks near");
    println!("# 128-512 KiB at ~86% of native, then declines for oversized blocks.");
}
