//! Table 3 regenerator: the worked encryption/decryption examples, printed
//! in the paper's layout and recomputed live (the same arithmetic is
//! asserted by tests/table3_walkthrough.rs).

use hear::hfp::format::Hfp;
use hear::hfp::ops;
use hear::hfp::ringexp::ring_from_i64;

fn m16(v: u64) -> u64 {
    v & 0xf
}

fn main() {
    println!("# Table 3: worked examples (4-bit ints mod 16, subgroup generator 3;");
    println!("#          half precision l_e=5, l_m=10)\n");

    // --- MPI_SUM (ints) ---
    println!("MPI_SUM (Eq. 1)      rank1=[1,5] rank2=[3,8], noise [2,1]/[1,7]");
    let enc1 = [m16(1 + 2 + 16 - 1), m16(5 + 1 + 16 - 7)];
    let enc2 = [m16(3 + 1), m16(8 + 7)];
    let red = [m16(enc1[0] + enc2[0]), m16(enc1[1] + enc2[1])];
    let dec = [m16(red[0] + 16 - 2), m16(red[1] + 16 - 1)];
    println!("  encrypted {enc1:?} {enc2:?}  reduced {red:?}  decrypted {dec:?} (expected [4,13])");

    // --- MPI_PROD (ints) ---
    println!("MPI_PROD (Eq. 2)     rank1=[2,4] rank2=[7,2], noise powers [1,2]/[1,0] of g=3");
    let enc1 = [m16(2), m16(4 * 9)];
    let enc2 = [m16(7 * 3), m16(2)];
    let red = [m16(enc1[0] * enc2[0]), m16(enc1[1] * enc2[1])];
    let dec = [m16(red[0] * 11), m16(red[1] * 9)]; // 3⁻¹=11, 9⁻¹=9 mod 16
    println!("  encrypted {enc1:?} {enc2:?}  reduced {red:?}  decrypted {dec:?} (expected [14,8])");

    // --- MPI_BXOR ---
    println!("MPI_BXOR (Eq. 3)     rank1=0011 rank2=0010, noise 0101/1001");
    let enc1 = 0b0011u64 ^ 0b0101 ^ 0b1001;
    let enc2 = 0b0010u64 ^ 0b1001;
    let red = enc1 ^ enc2;
    let dec = red ^ 0b0101;
    println!(
        "  encrypted {enc1:04b} {enc2:04b}  reduced {red:04b}  decrypted {dec:04b} (expected 0001)"
    );

    // --- Float MPI_SUM ---
    println!("Float MPI_SUM (Eq.7) 1.75*2^7 + 1.25*2^9, shared noise 1.5*2^13, delta=2");
    let (ew, mw) = (7u32, 10u32);
    let x1 = Hfp::from_f64(1.75 * 128.0, 5, 10).unwrap();
    let x2 = Hfp::from_f64(1.25 * 512.0, 5, 10).unwrap();
    let noise = Hfp {
        sign: false,
        exp: ring_from_i64(13, ew),
        sig: (1 << mw) | (1 << (mw - 1)),
        ew,
        mw,
    };
    let c1 = ops::mul(&x1, &noise, ew, mw);
    let c2 = ops::mul(&x2, &noise, ew, mw);
    let red = ops::add(&c1, &c2);
    let dec = ops::div(&red, &noise, ew, mw);
    println!(
        "  encrypted {:.4}*2^{} and {:.4}*2^{}  reduced {:.4}*2^{}  decrypted {:.4}*2^{} (expected 1.6875*2^9)",
        c1.sig as f64 / 1024.0, c1.exponent(),
        c2.sig as f64 / 1024.0, c2.exponent(),
        red.sig as f64 / 1024.0, red.exponent(),
        dec.sig as f64 / 1024.0, dec.exponent()
    );

    // --- Float MPI_PROD ---
    println!("Float MPI_PROD (Eq.6) 1.125*2^9 x 1.375*2^1, noise 1.75*2^22 / 1.25*2^-13, delta=0");
    let (ew, mw) = (5u32, 10u32);
    let x1 = Hfp::from_f64(1.125 * 512.0, ew, mw).unwrap();
    let x2 = Hfp::from_f64(1.375 * 2.0, ew, mw).unwrap();
    let n1 = Hfp {
        sign: false,
        exp: ring_from_i64(22, ew),
        sig: (1 << mw) | (0b11 << (mw - 2)),
        ew,
        mw,
    };
    let n2 = Hfp {
        sign: false,
        exp: ring_from_i64(-13, ew),
        sig: (1 << mw) | (1 << (mw - 2)),
        ew,
        mw,
    };
    let c1 = ops::div(&ops::mul(&x1, &n1, ew, mw), &n2, ew, mw);
    let c2 = ops::mul(&x2, &n2, ew, mw);
    let red = ops::mul(&c1, &c2, ew, mw);
    let dec = ops::div(&red, &n1, ew, mw);
    println!(
        "  encrypted {:.4}*2^{} and {:.4}*2^{} (ring exps; paper prints unwrapped 2^44/2^-12)",
        c1.sig as f64 / 1024.0,
        c1.exponent(),
        c2.sig as f64 / 1024.0,
        c2.exponent()
    );
    println!(
        "  reduced {:.4}*2^{} (paper: 1.354*2^33 = ring 2^1)  decrypted {:.4}*2^{} (expected 1.547*2^10)",
        red.sig as f64 / 1024.0, red.exponent(),
        dec.sig as f64 / 1024.0, dec.exponent()
    );
}
