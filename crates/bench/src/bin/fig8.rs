//! Figure 8 regenerator: 16 B MPI_Allreduce latency scaling with rank
//! count (PPN section then node section), native vs HEAR, with the noise
//! band (min/mean/max) that grows with scale and eventually swallows the
//! HEAR overhead — the paper's observation.

use hear::net::{latency_with_noise, Allocation, CryptoRates, Machine};

fn main() {
    let machine = Machine::piz_daint();
    let aes = CryptoRates::aes_ni_paper();
    println!("# Figure 8: 16 B allreduce latency (µs), recursive doubling");
    println!(
        "{:<8} {:<7} {:<5} {:>22} {:>22} {:>10}",
        "ranks", "nodes", "ppn", "native [min mean max]", "HEAR [min mean max]", "overhead"
    );
    for a in Allocation::paper_scaling_points(machine) {
        let n = latency_with_noise(&a, 16.0, None);
        let h = latency_with_noise(&a, 16.0, Some(&aes));
        let us = 1e6;
        let hidden = h.mean < n.max;
        println!(
            "{:<8} {:<7} {:<5} {:>6.2} {:>6.2} {:>7.2} {:>7.2} {:>6.2} {:>7.2} {:>8.2}µs{}",
            a.ranks(),
            a.nodes,
            a.ppn,
            n.min * us,
            n.mean * us,
            n.max * us,
            h.min * us,
            h.mean * us,
            h.max * us,
            (h.mean - n.mean) * us,
            if hidden { "  (within noise band)" } else { "" },
        );
    }
    println!("# paper: HEAR scales like native; at high rank counts the network noise");
    println!("# band exceeds the HEAR overhead (HEAR sometimes measures *below* native).");
}
