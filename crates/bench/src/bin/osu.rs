//! OSU-micro-benchmark-style message-size sweep on the real (thread-backed)
//! runtime: `osu_allreduce`-like latency for native vs HEAR at each size —
//! the measurement tool the paper used (OSU v7.1), in-process.
//!
//! Also prints the model's predicted algorithm crossover for reference.

use hear::core::{Backend, CommKeys};
use hear::layer::SecureComm;
use hear::mpi::Simulator;
use hear::net::{crossover_bytes, Allocation, Machine};
use hear_bench::scale_factor;
use std::time::Instant;

fn main() {
    let world = 4;
    println!("# OSU-style allreduce latency sweep, {world} ranks (thread-backed runtime)");
    println!(
        "{:<12} {:>14} {:>14} {:>10}",
        "size [B]", "native [µs]", "HEAR [µs]", "overhead"
    );
    for shift in [2usize, 4, 6, 8, 10, 12, 14, 16, 18, 20] {
        let elems = (1usize << shift) / 4;
        let elems = elems.max(1);
        let iters = (20_000 >> (shift / 2)).max(20) as u32 * scale_factor() as u32;
        let results = Simulator::new(world).run(move |comm| {
            let data: Vec<u32> = (0..elems as u32).collect();
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(comm.allreduce(&data, |a, b| a.wrapping_add(*b)));
            }
            let native = t0.elapsed().as_secs_f64() / iters as f64;

            let keys = CommKeys::generate(world, 0x05, Backend::best_available())
                .into_iter()
                .nth(comm.rank())
                .unwrap();
            let mut sc = SecureComm::new(comm.clone(), keys);
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(sc.allreduce_sum_u32(&data));
            }
            let hear = t0.elapsed().as_secs_f64() / iters as f64;
            (native, hear)
        });
        let (native, hear) = results[0];
        println!(
            "{:<12} {:>14.2} {:>14.2} {:>9.1}%",
            elems * 4,
            native * 1e6,
            hear * 1e6,
            100.0 * (hear - native) / native
        );
    }
    let a = Allocation {
        machine: Machine::piz_daint(),
        nodes: 2,
        ppn: 2,
    };
    println!(
        "# model-predicted rd/ring crossover at this scale: {:.0} KiB",
        crossover_bytes(&a, None) / 1024.0
    );
}
