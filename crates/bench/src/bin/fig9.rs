//! Figure 9 regenerator: simulated relative execution time of one
//! distributed-DNN training iteration under libhear, for the paper's four
//! proxy workloads at their published rank layouts.

use hear::dnn::{float_crypto_paper, iteration_time, paper_workloads, relative_time};
use hear::net::Machine;

fn main() {
    let machine = Machine::piz_daint();
    let crypto = float_crypto_paper();
    println!("# Figure 9: relative DNN training iteration time (HEAR / native)");
    println!(
        "{:<12} {:>6} {:>11} {:>12} {:>12} {:>10} {:>9}",
        "model", "ranks", "layout", "native [s]", "HEAR [s]", "relative", "paper"
    );
    let paper_vals = [1.312, 1.173, 1.113, 1.031];
    for (w, paper) in paper_workloads().iter().zip(paper_vals) {
        let native = iteration_time(w, machine, None);
        let hear = iteration_time(w, machine, Some(&crypto));
        let rel = relative_time(w, machine, &crypto);
        println!(
            "{:<12} {:>6} {:>11} {:>12.3} {:>12.3} {:>9.1}% {:>8.1}%",
            w.name,
            w.ranks(),
            format!("{}x{}", w.nodes, w.ppn),
            native,
            hear,
            rel * 100.0,
            paper * 100.0
        );
    }
    println!("# ordering must match the paper: ResNet-152 > DLRM > CosmoFlow > GPT3;");
    println!("# ResNet is the worst case (communication = Allreduce only).");
}
