//! §6 "Results validation" regenerator:
//! * MPI_FLOAT scheme: N iterations of encrypt→decrypt; the paper observed
//!   an average relative error of 1.3e-7 over 10M iterations (FP32).
//! * MPI_INT summation: receive buffers of the encrypted and the reference
//!   reduction compared bit-for-bit (std::memcmp equivalent).
//!
//! Default N = 1M; `HEAR_SCALE=full` uses the paper's 10M.

use hear::core::{Backend, CommKeys, FloatSum, HfpFormat};
use hear::layer::SecureComm;
use hear::mpi::Simulator;
use hear_bench::{exp_sampled_values, json_output, scale_factor};

fn main() {
    let n = 1_000_000 * scale_factor();
    let json = json_output();
    if !json {
        println!("# §6 results validation");
    }

    // Float enc/dec roundtrip error.
    let keys = CommKeys::generate(1, 0xBA11, Backend::best_available())
        .into_iter()
        .next()
        .unwrap();
    let scheme = FloatSum::new(HfpFormat::fp32(2, 2));
    let mut total_rel = 0.0f64;
    let mut max_rel = 0.0f64;
    let batch = 65_536;
    let (mut ct, mut out) = (Vec::new(), Vec::new());
    let mut done = 0usize;
    let mut seed = 1u64;
    while done < n {
        let take = batch.min(n - done);
        let vals = exp_sampled_values(take, -20..20, seed);
        seed += 1;
        scheme.encrypt_f64(&keys, 0, &vals, &mut ct).unwrap();
        scheme.decrypt_f64(&keys, 0, &ct, &mut out);
        for (v, o) in vals.iter().zip(&out) {
            let rel = ((o - v) / v).abs();
            total_rel += rel;
            max_rel = max_rel.max(rel);
        }
        done += take;
    }
    if !json {
        println!(
            "MPI_FLOAT (FP32, γ=2): {} enc/dec iterations, mean rel err {:.3e}, max {:.3e}",
            n,
            total_rel / n as f64,
            max_rel
        );
        println!("  paper: average 1.3e-7 over 10M iterations");
    }

    // Integer exactness: encrypted vs reference receive buffers.
    let results = Simulator::new(4).run(|comm| {
        let keys = CommKeys::generate(4, 0xBA12, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let mut sc = SecureComm::new(comm.clone(), keys);
        let data: Vec<i32> = (0..100_000)
            .map(|j| (j as i64 * 2_654_435_761u64 as i64 + comm.rank() as i64) as i32)
            .collect();
        let enc = sc.allreduce_sum_i32(&data);
        let reference = comm.allreduce(&data, |a, b| a.wrapping_add(*b));
        enc == reference
    });
    assert!(results.iter().all(|ok| *ok));
    if json {
        println!(
            "{{\n  \"figure\": \"validation\",\n  \"float_roundtrip\": {{\"iterations\": {n}, \
             \"mean_rel_err\": {:.6e}, \"max_rel_err\": {:.6e}, \"paper_mean_rel_err\": 1.3e-7}},\n  \
             \"int_exact\": {{\"ranks\": 4, \"elements\": 100000, \"memcmp_zero\": true}}\n}}",
            total_rel / n as f64,
            max_rel
        );
    } else {
        println!(
            "MPI_INT summation: 100k-element receive buffers identical on all 4 ranks (memcmp == 0)"
        );
    }
}
