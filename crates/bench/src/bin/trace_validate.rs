//! CI schema validator for telemetry emissions.
//!
//! Parses files produced by `hear-telemetry`'s exporters with the in-repo
//! parsers (`hear::telemetry::parse`) and exits nonzero on any schema
//! violation. File kind is chosen by suffix:
//!
//! * `*.trace.json`    — chrome-trace: must parse, contain at least one
//!   complete (`ph == "X"`) span and one `thread_name` metadata record,
//!   and every event must sit in pid 1.
//! * `*.prom`          — Prometheus text: must parse and expose at least
//!   one `hear_`-prefixed sample.
//! * anything else     — JSON snapshot: must parse and carry the
//!   `counters`/`gauges`/`histograms` sections.
//!
//! Used by `scripts/ci.sh`'s traced smoke run:
//!
//! ```sh
//! HEAR_TRACE=1 HEAR_TRACE_OUT=/tmp/smoke cargo run --release --example quickstart
//! cargo run --release -p hear-bench --bin trace_validate -- \
//!     /tmp/smoke.trace.json /tmp/smoke.prom /tmp/smoke.snapshot.json
//! ```

use hear::telemetry::parse;

fn validate_trace(text: &str) -> Result<String, String> {
    let events = parse::parse_chrome_trace(text).map_err(|e| e.to_string())?;
    let spans = events.iter().filter(|e| e.ph == "X").count();
    if spans == 0 {
        return Err("no complete (ph == \"X\") span events".into());
    }
    if !events
        .iter()
        .any(|e| e.ph == "M" && e.name == "thread_name")
    {
        return Err("no thread_name metadata (Perfetto lane labels)".into());
    }
    if let Some(bad) = events.iter().find(|e| e.pid != 1) {
        return Err(format!(
            "event '{}' outside pid 1 (pid {})",
            bad.name, bad.pid
        ));
    }
    let lanes: std::collections::BTreeSet<u64> = events
        .iter()
        .filter(|e| e.ph == "X")
        .map(|e| e.tid)
        .collect();
    Ok(format!("{spans} spans across {} lanes", lanes.len()))
}

fn validate_prom(text: &str) -> Result<String, String> {
    let samples = parse::parse_prometheus(text).map_err(|e| e.to_string())?;
    let hear = samples
        .iter()
        .filter(|s| s.name.starts_with("hear_"))
        .count();
    if hear == 0 {
        return Err("no hear_* samples".into());
    }
    Ok(format!("{} samples ({hear} hear_*)", samples.len()))
}

fn validate_snapshot(text: &str) -> Result<String, String> {
    let v = parse::parse_json(text).map_err(|e| e.to_string())?;
    for section in ["counters", "gauges", "histograms"] {
        if v.get(section).is_none() {
            return Err(format!("missing '{section}' section"));
        }
    }
    let events = v
        .get("span_events")
        .and_then(|n| n.as_f64())
        .ok_or("missing numeric 'span_events'")?;
    Ok(format!("snapshot with {events} span events"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: trace_validate <file.trace.json|file.prom|file.snapshot.json>...");
        std::process::exit(2);
    }
    let mut failures = 0usize;
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                failures += 1;
                continue;
            }
        };
        let verdict = if path.ends_with(".prom") {
            validate_prom(&text)
        } else if path.ends_with(".trace.json") {
            validate_trace(&text)
        } else {
            validate_snapshot(&text)
        };
        match verdict {
            Ok(summary) => println!("{path}: OK ({summary})"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
