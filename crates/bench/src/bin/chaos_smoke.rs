//! Chaos smoke run: the fault-injection fabric driven through three
//! seeded, offline, deterministic failure scenarios — message loss,
//! payload corruption, and a dead switch tree — as a CI gate on the
//! self-healing contract: every rank either returns the plaintext
//! reference aggregate or a typed error, nothing hangs, nothing panics,
//! and a dead INC tree degrades to the host ring and still completes.
//!
//! Each scenario runs under a watchdog thread; a scenario that fails to
//! finish within its budget exits with a distinct code so a hung fabric
//! is distinguishable from a wrong answer in CI logs.

use hear::core::{Backend, CommKeys, Homac, IntSumScheme};
use hear::layer::chaos::with_packet_hooks;
use hear::layer::{EngineCfg, EngineError, ReduceAlgo, RetryPolicy, SecureComm};
use hear::mpi::{FaultPlan, SimConfig, Simulator};
use hear::telemetry::{Metric, Registry};
use std::process::ExitCode;
use std::sync::mpsc;
use std::time::Duration;

const WORLD: usize = 4;
/// Endpoint of the single switch node at radix 4 (numbered after ranks).
const SWITCH_ENDPOINT: usize = WORLD;
const LEN: usize = 64;
const SEED: u64 = 0xC405;
/// Per-scenario watchdog budget. Generous: the worst case is every block
/// burning its full retry schedule (attempt timeouts + backoff), which
/// stays well under a second.
const WATCHDOG: Duration = Duration::from_secs(60);

fn policy() -> RetryPolicy {
    RetryPolicy::retries(2)
        .with_backoff(Duration::from_millis(2))
        .with_attempt_timeout(Duration::from_millis(200))
}

fn inputs() -> (Vec<Vec<u32>>, Vec<u32>) {
    let inputs: Vec<Vec<u32>> = (0..WORLD)
        .map(|r| {
            (0..LEN)
                .map(|j| (j as u32).wrapping_mul(0x9E37_79B9).wrapping_add(r as u32))
                .collect()
        })
        .collect();
    let expected = (0..LEN)
        .map(|j| {
            inputs
                .iter()
                .fold(0u32, |acc, row| acc.wrapping_add(row[j]))
        })
        .collect();
    (inputs, expected)
}

/// One verified allreduce per rank under `plan`; returns per-rank results.
fn run_world(plan: FaultPlan, algo: ReduceAlgo) -> Vec<Result<Vec<u32>, EngineError>> {
    let (data, _) = inputs();
    let cfg = SimConfig::default().with_switch(4).with_faults(plan);
    Simulator::with_config(WORLD, cfg).run(move |comm| {
        let keys = CommKeys::generate(WORLD, SEED, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let homac = Homac::generate(SEED ^ 0x99, Backend::best_available());
        let mut sc = SecureComm::new(comm.clone(), keys).with_homac(homac);
        let mut s = IntSumScheme::<u32>::default();
        let ecfg = EngineCfg::blocked(16)
            .verified()
            .with_algo(algo)
            .with_retry(policy());
        sc.allreduce_with(&mut s, &data[comm.rank()], ecfg)
    })
}

/// The base contract: Ok results must match the reference exactly;
/// errors must be typed transport/verification failures.
fn check_contract(name: &str, results: &[Result<Vec<u32>, EngineError>], expected: &[u32]) -> u32 {
    let mut failures = 0;
    for (rank, res) in results.iter().enumerate() {
        match res {
            Ok(got) if got == expected => println!("ok    {name}: rank {rank} correct"),
            Ok(_) => {
                println!("FAIL  {name}: rank {rank} returned a WRONG aggregate");
                failures += 1;
            }
            Err(EngineError::Hfp(e)) => {
                println!("FAIL  {name}: rank {rank} wrong error class: {e}");
                failures += 1;
            }
            Err(e) => println!("ok    {name}: rank {rank} typed error: {e}"),
        }
    }
    failures
}

/// Scenario 1 — message loss on the host ring: dropped sends are
/// re-driven by the retry schedule; a rank that exhausts its three
/// attempts on a block must surface a typed timeout, never a partial
/// aggregate.
fn scenario_drop() -> u32 {
    let (_, expected) = inputs();
    let plan = with_packet_hooks(FaultPlan::seeded(SEED).drop_one_in(8));
    let results = run_world(plan, ReduceAlgo::Ring);
    check_contract("drop", &results, &expected)
}

/// Scenario 2 — payload corruption under HoMAC: a flipped ciphertext,
/// digest, or tag bit must never survive into an Ok result (the §5.5
/// per-block resend either re-drives it clean or surfaces a typed
/// verification failure).
fn scenario_corrupt() -> u32 {
    let (_, expected) = inputs();
    let plan = with_packet_hooks(FaultPlan::seeded(SEED ^ 1).corrupt_one_in(5));
    let results = run_world(plan, ReduceAlgo::RecursiveDoubling);
    check_contract("corrupt", &results, &expected)
}

/// Scenario 3 — dead switch tree: the INC path must degrade to the host
/// ring on every rank, complete with the exact aggregate, and count the
/// degradation.
fn scenario_switch_kill() -> u32 {
    let (_, expected) = inputs();
    let reg = Registry::new_enabled();
    let _g = reg.install(None);
    let plan =
        with_packet_hooks(FaultPlan::seeded(SEED ^ 2).kill_endpoint_after(SWITCH_ENDPOINT, 0));
    let results = run_world(plan, ReduceAlgo::Switch);
    let mut failures = 0;
    for (rank, res) in results.iter().enumerate() {
        match res {
            Ok(got) if *got == expected => {
                println!("ok    switch-kill: rank {rank} completed via host ring")
            }
            Ok(_) => {
                println!("FAIL  switch-kill: rank {rank} wrong aggregate after fallback");
                failures += 1;
            }
            Err(e) => {
                println!("FAIL  switch-kill: rank {rank} failed instead of degrading: {e}");
                failures += 1;
            }
        }
    }
    let degraded = reg.counter(Metric::DegradedEpochs);
    if degraded >= 1 {
        println!("ok    switch-kill: degraded epochs counted ({degraded})");
    } else {
        println!("FAIL  switch-kill: fallback not recorded in hear_degraded_epochs_total");
        failures += 1;
    }
    failures
}

fn main() -> ExitCode {
    type Scenario = (&'static str, fn() -> u32);
    let scenarios: [Scenario; 3] = [
        ("drop", scenario_drop),
        ("corrupt", scenario_corrupt),
        ("switch-kill", scenario_switch_kill),
    ];
    let mut failures = 0u32;
    for (name, f) in scenarios {
        // Watchdog: the whole point of the deadline/retry machinery is
        // that faults cannot hang a collective, so a scenario overrunning
        // its budget is itself a gate failure (exit 3, not a CI timeout).
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let _ = tx.send(f());
        });
        match rx.recv_timeout(WATCHDOG) {
            Ok(n) => failures += n,
            Err(_) => {
                eprintln!("chaos smoke: scenario '{name}' HUNG past {WATCHDOG:?}");
                return ExitCode::from(3);
            }
        }
    }
    if failures == 0 {
        println!("chaos smoke: all scenarios ok");
        ExitCode::SUCCESS
    } else {
        eprintln!("chaos smoke: {failures} check(s) FAILED");
        ExitCode::FAILURE
    }
}
