//! Ablation studies for HEAR's design choices (DESIGN.md §1):
//!
//! 1. The cancelling technique (§5.1.4): Θ(1) vs Θ(P) decryption — the
//!    naive Fig. 1 scheme's decrypt cost grows linearly with the
//!    communicator while the cancelling scheme's stays flat (at the price
//!    of one extra PRF stream during encryption).
//! 2. The AES-NI 4-block pipeline: bulk keystream throughput with the
//!    pipelined `fill_blocks` vs one-block-at-a-time evaluation.

use hear::core::{Backend, CommKeys, IntSum, NaiveIntSum, Scratch};
use hear::prf::{Backend as PB, Prf, PrfCipher};
use hear_bench::scale_factor;
use std::time::Instant;

fn main() {
    let n = 262_144usize; // 1 MiB of u32
    let iters = 8 * scale_factor() as u32;

    println!("# Ablation 1: cancelling (Θ(1)) vs naive (Θ(P)) decryption, 1 MiB vectors");
    println!(
        "{:<8} {:>16} {:>16} {:>16} {:>8}",
        "world", "cancel enc [ms]", "cancel dec [ms]", "naive dec [ms]", "ratio"
    );
    for world in [2usize, 4, 8, 16, 32, 64] {
        let (keys, reg) =
            CommKeys::generate_with_registry(world, 0xAB1A, Backend::best_available());
        let mut scratch = Scratch::with_capacity(n);
        let mut buf = vec![1u32; n];

        let t0 = Instant::now();
        for _ in 0..iters {
            IntSum::encrypt_in_place(&keys[0], 0, &mut buf, &mut scratch);
        }
        let t_enc = t0.elapsed().as_secs_f64() / iters as f64;

        let t0 = Instant::now();
        for _ in 0..iters {
            IntSum::decrypt_in_place(&keys[0], 0, &mut buf, &mut scratch);
        }
        let t_dec = t0.elapsed().as_secs_f64() / iters as f64;

        let t0 = Instant::now();
        for _ in 0..iters {
            NaiveIntSum::decrypt_in_place(&reg, 0, &mut buf, &mut scratch);
        }
        let t_naive = t0.elapsed().as_secs_f64() / iters as f64;

        println!(
            "{:<8} {:>16.3} {:>16.3} {:>16.3} {:>7.1}x",
            world,
            t_enc * 1e3,
            t_dec * 1e3,
            t_naive * 1e3,
            t_naive / t_dec
        );
    }
    println!("# expected: naive/cancel dec ratio tracks the world size (Θ(P) vs Θ(1)).\n");

    println!("# Ablation 2: AES-NI pipelined fill_blocks vs per-block eval, 64 KiB keystream");
    const BLOCKS: usize = 4096;
    let reps = 200 * scale_factor() as u32;
    for backend in [PB::AesSoft, PB::AesNi] {
        let Some(prf) = PrfCipher::new(backend, 0x1234) else {
            println!("{backend:?}: unavailable");
            continue;
        };
        let mut out = vec![0u128; BLOCKS];
        let t0 = Instant::now();
        for _ in 0..reps {
            prf.fill_blocks(0, &mut out);
        }
        let bulk = BLOCKS as f64 * 16.0 * reps as f64 / t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        for _ in 0..reps {
            for (i, o) in out.iter_mut().enumerate() {
                *o = prf.eval_block(i as u128);
            }
        }
        let scalar = BLOCKS as f64 * 16.0 * reps as f64 / t0.elapsed().as_secs_f64();
        println!(
            "{:?}: pipelined {:.3} GB/s vs scalar {:.3} GB/s ({:.2}x)",
            backend,
            bulk / 1e9,
            scalar / 1e9,
            bulk / scalar
        );
    }
    println!("# expected: the 4-block path only pays off on AES-NI (ILP in the AES unit).");
}
