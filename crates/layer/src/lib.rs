//! # hear-layer — the libhear interposition layer
//!
//! The end-to-end system of paper §6: a drop-in secured Allreduce that
//! wraps the MPI runtime without application changes. Provides
//! [`SecureComm`] (transparent encrypt → reduce → decrypt for every
//! supported datatype/op, with optional HoMAC verification), the single
//! generic [`engine`] behind every method
//! ([`SecureComm::allreduce_with`]: scheme × algorithm × chunking ×
//! verification, all orthogonal), the page-aligned [`pool::MemoryPool`]
//! and its typed companion [`arena::ScratchArena`] (allocation-free
//! steady-state staging), the [`prefetch::Prefetcher`] worker that
//! generates the next epoch's keystream during the current epoch's
//! communication phase, pipelined large-message transfers
//! ([`SecureComm::allreduce_sum_u32_pipelined`], Fig. 6), and the
//! critical-path phase instrumentation of Fig. 4 ([`breakdown`]).

pub mod arena;
pub mod breakdown;
pub mod chaos;
pub mod dispatch;
pub mod engine;
pub mod extensions;
pub mod pipeline;
pub mod pool;
pub mod prefetch;
pub mod secure;
pub mod wire;

pub use arena::ScratchArena;
pub use breakdown::{measure_phases, PhaseBreakdown};
pub use dispatch::{DispatchError, TypedSlice, TypedVec};
pub use engine::{
    ChunkMode, EngineCfg, EngineError, MembershipChange, PeerDeadPolicy, RetryPolicy,
};
pub use extensions::SecureP2p;
pub use pool::{AlignedBuf, MemoryPool};
pub use prefetch::{PrefetchJob, Prefetcher};
pub use secure::{ReduceAlgo, SecureComm, Tagged, VerificationError};
