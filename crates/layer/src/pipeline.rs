//! Network pipelining (paper §6, "Communication" and Fig. 6).
//!
//! Large messages are split into blocks; while block `n` is being reduced
//! in the network (a nonblocking `MPI_Iallreduce`), the CPU encrypts block
//! `n+1` and decrypts block `n−1`. The block size trades pipeline fill
//! against per-message latency — the sweep in Fig. 6 finds 128–256 KiB
//! optimal on the paper's system.
//!
//! The overlap machinery lives in [`crate::engine`]; the methods here are
//! shims that pin the historical transport choice (ring) and block size.

use crate::engine::{EngineCfg, EngineError};
use crate::secure::{ReduceAlgo, SecureComm};
use hear_core::{FloatSumScheme, IntSumScheme};

impl SecureComm {
    /// Pipelined encrypted sum of a large u32 vector using `block_elems`
    /// elements per pipeline block. Semantically identical to
    /// [`SecureComm::allreduce_sum_u32`]. Shim over
    /// [`SecureComm::allreduce_with`] with [`EngineCfg::pipelined`] on the
    /// ring transport.
    pub fn allreduce_sum_u32_pipelined(&mut self, data: &[u32], block_elems: usize) -> Vec<u32> {
        let mut s = IntSumScheme::with_scratch(std::mem::take(&mut self.scratch_u32));
        let cfg = EngineCfg::pipelined(block_elems).with_algo(ReduceAlgo::Ring);
        let out = self.allreduce_with(&mut s, data, cfg);
        self.scratch_u32 = s.into_scratch();
        out.expect("integer schemes are infallible")
    }

    /// The "Naïve (sync)" variant of Fig. 6: blocks are encrypted, reduced
    /// and decrypted strictly one after another (no overlap). Shim over
    /// [`SecureComm::allreduce_with`] with [`EngineCfg::blocked`].
    pub fn allreduce_sum_u32_blocked_sync(&mut self, data: &[u32], block_elems: usize) -> Vec<u32> {
        let mut s = IntSumScheme::with_scratch(std::mem::take(&mut self.scratch_u32));
        let cfg = EngineCfg::blocked(block_elems).with_algo(ReduceAlgo::Ring);
        let out = self.allreduce_with(&mut s, data, cfg);
        self.scratch_u32 = s.into_scratch();
        out.expect("integer schemes are infallible")
    }

    /// Pipelined encrypted float sum (Eq. 7) — the configuration libhear
    /// pipelines for "data-heavy applications such as gradient summing in
    /// distributed ML" (§6). Semantically identical to
    /// [`SecureComm::allreduce_float_sum`]. Shim over
    /// [`SecureComm::allreduce_with`].
    pub fn allreduce_float_sum_pipelined(
        &mut self,
        fmt: hear_core::HfpFormat,
        data: &[f64],
        block_elems: usize,
    ) -> Result<Vec<f64>, hear_core::HfpError> {
        let cfg = EngineCfg::pipelined(block_elems).with_algo(ReduceAlgo::Ring);
        self.allreduce_with(&mut FloatSumScheme::new(fmt), data, cfg)
            .map_err(EngineError::into_hfp)
    }
}

#[cfg(test)]
mod tests {
    use crate::secure::SecureComm;
    use hear_core::CommKeys;
    use hear_mpi::{Communicator, NetConfig, SimConfig, Simulator};
    use hear_prf::Backend;

    fn secure(comm: &Communicator, seed: u64) -> SecureComm {
        let keys = CommKeys::generate(comm.world(), seed, Backend::AesSoft)
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        SecureComm::new(comm.clone(), keys)
    }

    #[test]
    fn pipelined_matches_plain_for_all_block_sizes() {
        for world in [2usize, 3] {
            for block in [1usize, 3, 7, 64, 1000] {
                let results = Simulator::new(world).run(move |comm| {
                    let data: Vec<u32> = (0..97).map(|j| comm.rank() as u32 * 31 + j).collect();
                    let piped = secure(comm, 1).allreduce_sum_u32_pipelined(&data, block);
                    let plain = secure(comm, 1).allreduce_sum_u32(&data);
                    (piped, plain)
                });
                for (piped, plain) in &results {
                    assert_eq!(piped, plain, "world={world} block={block}");
                }
            }
        }
    }

    #[test]
    fn blocked_sync_matches_plain() {
        let results = Simulator::new(2).run(|comm| {
            let data: Vec<u32> = (0..55).collect();
            let sync = secure(comm, 2).allreduce_sum_u32_blocked_sync(&data, 8);
            let plain = secure(comm, 2).allreduce_sum_u32(&data);
            (sync, plain)
        });
        for (sync, plain) in &results {
            assert_eq!(sync, plain);
        }
    }

    #[test]
    fn pipelining_overlaps_network_transit() {
        // This used to race wall clocks (best of five attempts); it now
        // asserts the mechanism itself, deterministically, via the
        // fabric's per-thread transit-wait accounting. The blocked-sync
        // loop absorbs every block's transit delay on the rank thread;
        // the pipelined loop hands those waits to the request progress
        // threads and keeps the rank thread transit-free — that handoff
        // IS the overlap Fig. 6 measures.
        // Alpha must dominate inter-rank compute skew (debug-build masking
        // plus scheduler noise on a loaded test machine), or the peer's
        // message can already be past its delivery time when the sync loop
        // reaches its recv and no transit sleep is ever charged.
        let cfg = SimConfig::default().with_net(NetConfig {
            alpha: std::time::Duration::from_millis(5),
            beta_ns_per_byte: 0.5,
        });
        let n = 16 * 1024usize;
        let results = Simulator::with_config(2, cfg).run(move |comm| {
            let data: Vec<u32> = (0..n as u32).collect();
            let mut sc = secure(comm, 3).without_prefetch();
            let w0 = hear_mpi::thread_transit_wait_nanos();
            let piped = sc.allreduce_sum_u32_pipelined(&data, 4 * 1024);
            let piped_wait = hear_mpi::thread_transit_wait_nanos() - w0;
            let w1 = hear_mpi::thread_transit_wait_nanos();
            let sync = sc.allreduce_sum_u32_blocked_sync(&data, 4 * 1024);
            let sync_wait = hear_mpi::thread_transit_wait_nanos() - w1;
            assert_eq!(piped, sync);
            (piped_wait, sync_wait)
        });
        for (rank, (piped_wait, sync_wait)) in results.iter().enumerate() {
            assert_eq!(
                *piped_wait, 0,
                "rank {rank}: pipelined rank thread slept in transit"
            );
            assert!(
                *sync_wait > 0,
                "rank {rank}: sync loop never saw the transit delay"
            );
        }
    }

    #[test]
    fn pipelined_matches_plain_on_random_shapes() {
        // Randomized shapes from the testkit PRNG: world size, payload
        // length, block size, and key seed all vary per round, and the
        // payload itself is random (wrapping sums exercise the full u32
        // ring, not just small counters).
        use hear_testkit::TestRng;
        let mut rng = TestRng::seed_from_u64(0x91e_11e5);
        for round in 0..6u64 {
            let world = rng.gen_range(2usize..=4);
            let len = rng.gen_range(1usize..=300);
            let block = rng.gen_range(1usize..=len.max(2));
            let seed = rng.gen::<u64>();
            let results = Simulator::new(world).run(move |comm| {
                let mut r = TestRng::seed_from_u64(seed ^ comm.rank() as u64);
                let data: Vec<u32> = (0..len).map(|_| r.gen::<u32>()).collect();
                let piped = secure(comm, seed).allreduce_sum_u32_pipelined(&data, block);
                let plain = secure(comm, seed).allreduce_sum_u32(&data);
                (piped, plain)
            });
            for (rank, (piped, plain)) in results.iter().enumerate() {
                assert_eq!(
                    piped, plain,
                    "round={round} world={world} len={len} block={block} rank={rank}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_block_rejected() {
        Simulator::new(1).run(|comm| {
            secure(comm, 4).allreduce_sum_u32_pipelined(&[1], 0);
        });
    }
}

#[cfg(test)]
mod float_pipeline_tests {
    use crate::secure::SecureComm;
    use hear_core::{CommKeys, HfpFormat};
    use hear_mpi::{Communicator, Simulator};
    use hear_prf::Backend;

    fn secure(comm: &Communicator, seed: u64) -> SecureComm {
        let keys = CommKeys::generate(comm.world(), seed, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        SecureComm::new(comm.clone(), keys)
    }

    #[test]
    fn pipelined_float_matches_plain() {
        for block in [1usize, 7, 64, 500] {
            let results = Simulator::new(3).run(move |comm| {
                let data: Vec<f64> = (0..200)
                    .map(|j| ((comm.rank() * 200 + j) as f64 * 0.17).cos() + 2.0)
                    .collect();
                let fmt = HfpFormat::fp32(2, 2);
                let piped = secure(comm, 1)
                    .allreduce_float_sum_pipelined(fmt, &data, block)
                    .unwrap();
                let plain = secure(comm, 1).allreduce_float_sum(fmt, &data).unwrap();
                (piped, plain)
            });
            for (piped, plain) in &results {
                // Ring and recursive-doubling transports associate the
                // HFP additions differently; results agree to rounding.
                for (p, q) in piped.iter().zip(plain) {
                    let rel = ((p - q) / q).abs();
                    assert!(rel < 1e-6, "block={block}: {p} vs {q}");
                }
            }
        }
    }

    #[test]
    fn pipelined_float_rejects_bad_input() {
        let results = Simulator::new(2).run(|comm| {
            secure(comm, 2)
                .allreduce_float_sum_pipelined(HfpFormat::fp32(2, 2), &[1.0, f64::NAN], 1)
                .is_err()
        });
        // NaN sits in the second block: the first block is already posted,
        // but the call must still error on every rank.
        assert!(results.iter().all(|e| *e));
    }
}
