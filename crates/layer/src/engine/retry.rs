//! Per-call retry state and the attempt-tag schedule shared by every
//! engine entry point.

use super::cfg::{EngineError, RetryPolicy};
use hear_mpi::{CommError, ATTEMPT_TAG_STRIDE, COLL_BLOCK_TAG_STRIDE, MAX_TAG_ATTEMPTS};
use std::time::{Duration, Instant};

/// Mutable retry state for one engine call: the call-wide attempt counter
/// (which drives tag selection so a retry can never match a failed
/// attempt's stale wires), the remaining retry budget, and the growing
/// backoff.
pub(crate) struct RetryCtl {
    policy: RetryPolicy,
    /// Attempts consumed call-wide (monotonic across blocks, retries and
    /// degradations); attempt `a` of block `b` runs on tag
    /// `base + b·COLL_BLOCK_TAG_STRIDE + a·ATTEMPT_TAG_STRIDE`.
    pub(crate) attempt: u64,
    retries_left: u32,
    backoff: Duration,
}

/// What the retry controller decided after a block-level failure.
pub(crate) enum Step {
    /// Re-run the block on the same algorithm, next attempt tag.
    Retry,
    /// Switch the rest of the call to the host ring, next attempt tag.
    Degrade,
    /// Surface the error.
    Fail(EngineError),
}

impl RetryCtl {
    pub(crate) fn new(policy: RetryPolicy) -> RetryCtl {
        RetryCtl {
            policy,
            attempt: 0,
            retries_left: policy.max_attempts.saturating_sub(1),
            backoff: policy.backoff,
        }
    }

    /// Deadline for the attempt about to start.
    pub(crate) fn deadline(&self) -> Option<Instant> {
        self.policy.attempt_timeout.map(|t| Instant::now() + t)
    }

    /// Advance to the next attempt's tag slot; errors when the per-call
    /// tag space (MAX_TAG_ATTEMPTS slots) is used up.
    fn bump(&mut self) -> Result<(), ()> {
        self.attempt += 1;
        if self.attempt >= MAX_TAG_ATTEMPTS {
            Err(())
        } else {
            Ok(())
        }
    }

    /// Decide what a block-level failure means under the policy.
    /// Timeouts and verification failures are retryable (a resend on the
    /// per-block §5.5 digest failure IS the packet localization: only the
    /// failing block travels again); `SwitchDown` degrades without
    /// consuming a retry; everything else fails.
    pub(crate) fn on_error(&mut self, e: EngineError) -> Step {
        let retryable = match &e {
            // Degrade even when the call has already moved off the switch:
            // a pipelined call posts several blocks on the INC path before
            // the first failure drains, and those stale posts still come
            // back as `SwitchDown` after the call fell back to the ring.
            EngineError::Comm(CommError::SwitchDown { .. })
                if self.policy.degrade_on_switch_down =>
            {
                return if self.bump().is_ok() {
                    Step::Degrade
                } else {
                    Step::Fail(e)
                };
            }
            EngineError::Comm(c) => c.is_retryable(),
            EngineError::Verification(_) => true,
            EngineError::Hfp(_) => false,
        };
        if !retryable || self.retries_left == 0 || self.bump().is_err() {
            return Step::Fail(e);
        }
        self.retries_left -= 1;
        hear_telemetry::incr(hear_telemetry::Metric::RetriesTotal);
        if !self.backoff.is_zero() {
            // Cap the sleep by the per-attempt deadline: a backoff that
            // outlasts one attempt's budget would idle away more time
            // than the retry is allowed to use.
            let sleep = match self.policy.attempt_timeout {
                Some(t) => self.backoff.min(t),
                None => self.backoff,
            };
            std::thread::sleep(sleep);
            self.backoff = self.backoff.saturating_mul(2);
        }
        Step::Retry
    }
}

/// Wire tag for one attempt of one block.
#[inline]
pub(crate) fn attempt_tag(base: u64, block_idx: u64, attempt: u64) -> u64 {
    base + block_idx * COLL_BLOCK_TAG_STRIDE + attempt * ATTEMPT_TAG_STRIDE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeout_err() -> EngineError {
        EngineError::Comm(CommError::Timeout {
            source: 0,
            tag: 0,
            waited: Duration::ZERO,
        })
    }

    /// The backoff sleep never exceeds the per-attempt deadline: with a
    /// 50 ms configured backoff but a 5 ms attempt budget, two retries
    /// must sleep ~10 ms total, not 150 ms.
    #[test]
    fn backoff_is_capped_by_attempt_deadline() {
        let policy = RetryPolicy::retries(2)
            .with_backoff(Duration::from_millis(50))
            .with_attempt_timeout(Duration::from_millis(5));
        let mut ctl = RetryCtl::new(policy);
        let start = Instant::now();
        assert!(matches!(ctl.on_error(timeout_err()), Step::Retry));
        assert!(matches!(ctl.on_error(timeout_err()), Step::Retry));
        assert!(
            start.elapsed() < Duration::from_millis(45),
            "slept {:?}, the 50 ms backoff was not capped by the 5 ms deadline",
            start.elapsed()
        );
        assert!(matches!(ctl.on_error(timeout_err()), Step::Fail(_)));
    }

    /// Without a deadline the configured backoff still applies (and keeps
    /// doubling).
    #[test]
    fn uncapped_backoff_sleeps_and_doubles() {
        let mut ctl = RetryCtl::new(RetryPolicy::retries(1).with_backoff(Duration::from_millis(4)));
        let start = Instant::now();
        assert!(matches!(ctl.on_error(timeout_err()), Step::Retry));
        assert!(start.elapsed() >= Duration::from_millis(4));
        assert_eq!(ctl.backoff, Duration::from_millis(8));
    }
}
