//! Encrypted all-to-all on the single-origin cell transport.
//!
//! Every rank contributes `world` equal-length chunks (flattened into one
//! slice) and receives the transposed set: output chunk `src` is the chunk
//! rank `src` addressed to this rank. No combine happens, so elements ride
//! as lossless XOR-padded `u64` cells — the pad word for the element `j` of
//! the `(src → dst)` chunk is collective-keystream word
//! `(src·world + dst)·L + j`, a coordinate space disjoint across ordered
//! pairs, so no pad word is ever drawn twice within an epoch. Verified mode
//! attaches a shared-stream HoMAC tag per cell at the same coordinate
//! offset by `DIGEST_BASE`.

use super::cfg::{ChunkMode, EngineCfg, EngineError};
use super::packet::{open_cells, open_cells_tagged, seal_cells, seal_cells_tagged, CellScratch};
use super::retry::{attempt_tag, RetryCtl, Step};
use super::DEPTH;
use crate::secure::{SecureComm, Tagged};
use hear_core::{Homac, Scheme};
use hear_mpi::{CommError, Request};
use std::collections::VecDeque;

/// Fold a retry decision on the pairwise exchange (no switch involved, so
/// `Degrade` is just another retry).
fn pair_step(step: Step) -> Result<(), EngineError> {
    match step {
        Step::Retry | Step::Degrade => Ok(()),
        Step::Fail(e) => Err(e),
    }
}

impl SecureComm {
    /// Encrypted all-to-all: `data` holds `world` equal-length chunks
    /// back to back (chunk `dst` goes to rank `dst`); the result holds
    /// the received chunks in source-rank order. Bit-for-bit lossless for
    /// every scheme — `scheme` picks the cell codec only.
    pub fn alltoall_with<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        cfg: EngineCfg,
    ) -> Result<Vec<S::Input>, EngineError> {
        let mut out = Vec::new();
        self.alltoall_with_into(scheme, data, &mut out, cfg)?;
        Ok(out)
    }

    /// [`SecureComm::alltoall_with`] writing into a caller-provided
    /// vector. The layout is identical across chunk modes: the chunk from
    /// rank `src` occupies `src·L .. (src+1)·L` (rounds overwrite their
    /// slice of each chunk in place).
    pub fn alltoall_with_into<S: Scheme + 'static>(
        &mut self,
        _scheme: &mut S,
        data: &[S::Input],
        out: &mut Vec<S::Input>,
        cfg: EngineCfg,
    ) -> Result<(), EngineError> {
        let world = self.world();
        assert!(
            data.len() % world == 0,
            "alltoall requires one equal-length chunk per rank"
        );
        let chunk_len = data.len() / world;
        let _span = hear_telemetry::span!("secure_alltoall", elems = data.len());
        let homac = if cfg.verified {
            Some(
                self.homac
                    .clone()
                    .expect("enable verification with with_homac()"),
            )
        } else {
            None
        };
        self.keys.advance();
        out.clear();
        // Prefill with the contribution: the self chunk is already in
        // place, and every other chunk's slice gets overwritten by its
        // round. (At world 1 the transpose is the identity, so this is
        // also the complete zero-allocation local path.)
        out.extend_from_slice(data);
        if world == 1 || chunk_len == 0 {
            return Ok(());
        }
        let b = match cfg.chunk {
            ChunkMode::Sync => chunk_len,
            ChunkMode::Blocked(x) | ChunkMode::Pipelined(x) => {
                assert!(x > 0, "block size must be positive");
                x
            }
        };
        let nrounds = (chunk_len as u64).div_ceil(b as u64);
        let base_tag = self.comm.reserve_coll_tags(nrounds);
        let mut ctl = RetryCtl::new(cfg.retry);
        let mut cs = CellScratch::lease(&mut self.arena);
        let mut failed = None;
        if matches!(cfg.chunk, ChunkMode::Pipelined(_)) {
            failed = self
                .a2a_rounds_pipelined::<S>(
                    data,
                    out,
                    chunk_len,
                    b,
                    nrounds,
                    base_tag,
                    &mut ctl,
                    homac.as_ref(),
                    &mut cs,
                )
                .err();
        } else {
            for round in 0..nrounds {
                if let Err(e) = self.a2a_round_sync::<S>(
                    data,
                    out,
                    chunk_len,
                    b,
                    round,
                    base_tag,
                    &mut ctl,
                    homac.as_ref(),
                    &mut cs,
                ) {
                    failed = Some(e);
                    break;
                }
            }
        }
        cs.restore(&mut self.arena);
        failed.map_or(Ok(()), Err)
    }

    /// One all-to-all round, synchronously, with the attempt loop. Seals
    /// the round's slice of each destination chunk, exchanges pairwise,
    /// and decodes each source's slice into place.
    #[allow(clippy::too_many_arguments)]
    fn a2a_round_sync<S: Scheme + 'static>(
        &mut self,
        data: &[S::Input],
        out: &mut [S::Input],
        chunk_len: usize,
        b: usize,
        round: u64,
        base_tag: u64,
        ctl: &mut RetryCtl,
        homac: Option<&Homac>,
        cs: &mut CellScratch,
    ) -> Result<(), EngineError> {
        let world = self.world();
        let me = self.rank();
        let lo = round as usize * b;
        let hi = (lo + b).min(chunk_len);
        loop {
            let tag = attempt_tag(base_tag, round, ctl.attempt);
            let deadline = ctl.deadline();
            let step = if let Some(h) = homac {
                let chunks =
                    seal_round_tagged::<S>(&self.keys, h, data, world, me, chunk_len, lo, hi, cs);
                match self.comm.try_alltoall_tagged(tag, chunks, deadline) {
                    Ok(recv) => {
                        match open_round_tagged::<S>(
                            &self.keys, h, &recv, world, me, chunk_len, lo, hi, cs, out,
                        ) {
                            Ok(()) => return Ok(()),
                            Err(e) => ctl.on_error(e),
                        }
                    }
                    Err(e) => ctl.on_error(EngineError::Comm(e)),
                }
            } else {
                let chunks = seal_round::<S>(&self.keys, data, world, me, chunk_len, lo, hi, cs);
                match self.comm.try_alltoall_tagged(tag, chunks, deadline) {
                    Ok(recv) => {
                        open_round::<S>(&self.keys, &recv, world, me, chunk_len, lo, hi, cs, out);
                        return Ok(());
                    }
                    Err(e) => ctl.on_error(EngineError::Comm(e)),
                }
            };
            pair_step(step)?;
        }
    }

    /// Pipelined all-to-all rounds: up to [`DEPTH`] pairwise exchanges in
    /// flight; drains decode into disjoint slices (order-independent) and
    /// fall back to [`SecureComm::a2a_round_sync`] on failure.
    #[allow(clippy::too_many_arguments)]
    fn a2a_rounds_pipelined<S: Scheme + 'static>(
        &mut self,
        data: &[S::Input],
        out: &mut [S::Input],
        chunk_len: usize,
        b: usize,
        nrounds: u64,
        base_tag: u64,
        ctl: &mut RetryCtl,
        homac: Option<&Homac>,
        cs: &mut CellScratch,
    ) -> Result<(), EngineError> {
        enum Post {
            Plain(Request<Result<Vec<Vec<u64>>, CommError>>),
            Tagged(Request<Result<Vec<Vec<Tagged<u64>>>, CommError>>),
        }
        let world = self.world();
        let me = self.rank();
        let mut inflight: VecDeque<(u64, Post)> = VecDeque::with_capacity(DEPTH);
        let drain = |sc: &mut Self,
                     round: u64,
                     post: Post,
                     ctl: &mut RetryCtl,
                     cs: &mut CellScratch,
                     out: &mut [S::Input]|
         -> Result<(), EngineError> {
            let lo = round as usize * b;
            let hi = (lo + b).min(chunk_len);
            hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, -1);
            let step = match post {
                Post::Plain(req) => match req.wait() {
                    Ok(recv) => {
                        open_round::<S>(&sc.keys, &recv, world, me, chunk_len, lo, hi, cs, out);
                        return Ok(());
                    }
                    Err(e) => ctl.on_error(EngineError::Comm(e)),
                },
                Post::Tagged(req) => match req.wait() {
                    Ok(recv) => match open_round_tagged::<S>(
                        &sc.keys,
                        homac.expect("tagged post implies homac"),
                        &recv,
                        world,
                        me,
                        chunk_len,
                        lo,
                        hi,
                        cs,
                        out,
                    ) {
                        Ok(()) => return Ok(()),
                        Err(e) => ctl.on_error(e),
                    },
                    Err(e) => ctl.on_error(EngineError::Comm(e)),
                },
            };
            pair_step(step)?;
            sc.a2a_round_sync::<S>(data, out, chunk_len, b, round, base_tag, ctl, homac, cs)
        };
        let mut failed = None;
        for round in 0..nrounds {
            let lo = round as usize * b;
            let hi = (lo + b).min(chunk_len);
            hear_telemetry::incr(hear_telemetry::Metric::PipelineBlocks);
            hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, 1);
            let tag = attempt_tag(base_tag, round, ctl.attempt);
            let deadline = ctl.deadline();
            let post = if let Some(h) = homac {
                let chunks =
                    seal_round_tagged::<S>(&self.keys, h, data, world, me, chunk_len, lo, hi, cs);
                Post::Tagged(self.comm.try_ialltoall_tagged(tag, chunks, deadline))
            } else {
                let chunks = seal_round::<S>(&self.keys, data, world, me, chunk_len, lo, hi, cs);
                Post::Plain(self.comm.try_ialltoall_tagged(tag, chunks, deadline))
            };
            inflight.push_back((round, post));
            if inflight.len() >= DEPTH {
                let (r, post) = inflight.pop_front().expect("non-empty");
                if let Err(e) = drain(self, r, post, ctl, cs, out) {
                    failed = Some(e);
                    break;
                }
            }
        }
        if failed.is_none() {
            while let Some((r, post)) = inflight.pop_front() {
                if let Err(e) = drain(self, r, post, ctl, cs, out) {
                    failed = Some(e);
                    break;
                }
            }
        }
        failed.map_or(Ok(()), Err)
    }
}

/// Pad-space coordinate of element `j` of the round's slice of the
/// `(src → dst)` chunk.
#[inline]
fn pair_first(src: usize, dst: usize, world: usize, chunk_len: usize, lo: usize) -> u64 {
    ((src * world + dst) * chunk_len + lo) as u64
}

/// Seal the round's slice of every destination chunk into per-destination
/// cell vectors (owned — the pairwise transport consumes them).
#[allow(clippy::too_many_arguments)]
fn seal_round<S: Scheme>(
    keys: &hear_core::CommKeys,
    data: &[S::Input],
    world: usize,
    me: usize,
    chunk_len: usize,
    lo: usize,
    hi: usize,
    cs: &mut CellScratch,
) -> Vec<Vec<u64>> {
    (0..world)
        .map(|dst| {
            seal_cells::<S>(
                keys,
                pair_first(me, dst, world, chunk_len, lo),
                &data[dst * chunk_len + lo..dst * chunk_len + hi],
                cs,
            );
            std::mem::take(&mut cs.cells)
        })
        .collect()
}

/// Decode every source's received slice into its place in `out`.
#[allow(clippy::too_many_arguments)]
fn open_round<S: Scheme>(
    keys: &hear_core::CommKeys,
    recv: &[Vec<u64>],
    world: usize,
    me: usize,
    chunk_len: usize,
    lo: usize,
    hi: usize,
    cs: &mut CellScratch,
    out: &mut [S::Input],
) {
    for (src, cells) in recv.iter().enumerate() {
        open_cells::<S>(
            keys,
            pair_first(src, me, world, chunk_len, lo),
            cells,
            cs,
            &mut out[src * chunk_len + lo..src * chunk_len + hi],
        );
    }
}

/// [`seal_round`] with a shared-stream HoMAC tag per cell.
#[allow(clippy::too_many_arguments)]
fn seal_round_tagged<S: Scheme>(
    keys: &hear_core::CommKeys,
    homac: &Homac,
    data: &[S::Input],
    world: usize,
    me: usize,
    chunk_len: usize,
    lo: usize,
    hi: usize,
    cs: &mut CellScratch,
) -> Vec<Vec<Tagged<u64>>> {
    (0..world)
        .map(|dst| {
            seal_cells_tagged::<S>(
                keys,
                homac,
                pair_first(me, dst, world, chunk_len, lo),
                &data[dst * chunk_len + lo..dst * chunk_len + hi],
                cs,
            );
            std::mem::take(&mut cs.tagged)
        })
        .collect()
}

/// [`open_round`] with per-segment MAC verification; rejects the round if
/// any source's slice fails.
#[allow(clippy::too_many_arguments)]
fn open_round_tagged<S: Scheme>(
    keys: &hear_core::CommKeys,
    homac: &Homac,
    recv: &[Vec<Tagged<u64>>],
    world: usize,
    me: usize,
    chunk_len: usize,
    lo: usize,
    hi: usize,
    cs: &mut CellScratch,
    out: &mut [S::Input],
) -> Result<(), EngineError> {
    for (src, cells) in recv.iter().enumerate() {
        open_cells_tagged::<S>(
            keys,
            homac,
            pair_first(src, me, world, chunk_len, lo),
            cells,
            cs,
            &mut out[src * chunk_len + lo..src * chunk_len + hi],
        )?;
    }
    Ok(())
}
