//! Wire shapes and seal/open codecs for the engine's two transports.
//!
//! *Reductions* (allreduce, reduce-scatter) ship [`Packet`]s: the payload
//! ciphertext plus encrypted digest lanes and HoMAC tags, all of which the
//! network combines homomorphically. *Single-origin* collectives
//! (allgather, alltoall) ship plain `u64` cells — each element bit-encoded
//! losslessly ([`Scheme::cell_encode`]) and XOR-padded on the epoch's
//! collective keystream — optionally as [`Tagged`] pairs carrying a
//! shared-stream HoMAC tag per cell.

use super::cfg::EngineError;
use crate::arena::ScratchArena;
use crate::secure::{Tagged, VerificationError};
use hear_core::{CommKeys, Homac, IntSum, Scheme, Scratch, DIGEST_BASE, DIGEST_LANES};
use hear_prf::keystream_u64;

/// What the network reduces in verified mode: the payload ciphertext plus
/// the encrypted digest lanes and their HoMAC tags (§5.5's "(σ, c)" pair,
/// widened with the digest channel).
#[derive(Debug, Clone)]
pub(crate) struct Packet<W> {
    pub(crate) c: W,
    pub(crate) d: [u64; DIGEST_LANES],
    pub(crate) s: [u64; DIGEST_LANES],
}

/// The combiner for [`Packet`] streams. A non-capturing generic `fn`, so
/// every transport — including the key-less switch service threads — can
/// carry it as a plain function pointer.
pub(crate) fn packet_op<S: Scheme>(a: &Packet<S::Wire>, b: &Packet<S::Wire>) -> Packet<S::Wire> {
    let mut d = [0u64; DIGEST_LANES];
    let mut s = [0u64; DIGEST_LANES];
    for i in 0..DIGEST_LANES {
        d[i] = a.d[i].wrapping_add(b.d[i]);
        s[i] = Homac::combine(a.s[i], b.s[i]);
    }
    Packet {
        c: S::op(&a.c, &b.c),
        d,
        s,
    }
}

/// PRF index of the first digest lane of the block starting at `offset`.
#[inline]
pub(crate) fn digest_first(offset: usize) -> u64 {
    DIGEST_BASE + offset as u64 * DIGEST_LANES as u64
}

/// The verified path's staging set, leased from the [`ScratchArena`] for
/// one call: wire ciphertexts, the decrypted block, digest lanes and tags
/// (seal side), aggregate lane/tag splits (open side), and the packet
/// vector that shuttles to and from the transport.
pub(crate) struct VerifyScratch<S: Scheme + 'static> {
    pub(crate) wire: Vec<S::Wire>,
    pub(crate) dec: Vec<S::Input>,
    pub(crate) dlanes: Vec<u64>,
    pub(crate) sigmas: Vec<u64>,
    pub(crate) d_agg: Vec<u64>,
    pub(crate) s_agg: Vec<u64>,
    pub(crate) packets: Vec<Packet<S::Wire>>,
    pub(crate) dscratch: Scratch<u64>,
}

impl<S: Scheme + 'static> VerifyScratch<S> {
    pub(crate) fn lease(arena: &mut ScratchArena) -> Self {
        VerifyScratch {
            wire: arena.take_vec(),
            dec: arena.take_vec(),
            dlanes: arena.take_vec(),
            sigmas: arena.take_vec(),
            d_agg: arena.take_vec(),
            s_agg: arena.take_vec(),
            packets: arena.take_vec(),
            dscratch: Scratch::default(),
        }
    }

    pub(crate) fn restore(self, arena: &mut ScratchArena) {
        arena.put_vec(self.wire);
        arena.put_vec(self.dec);
        arena.put_vec(self.dlanes);
        arena.put_vec(self.sigmas);
        arena.put_vec(self.d_agg);
        arena.put_vec(self.s_agg);
        arena.put_vec(self.packets);
    }
}

/// Mask one block and wrap it into verified-transport packets (left in
/// `vs.packets`).
pub(crate) fn seal_block<S: Scheme + 'static>(
    scheme: &mut S,
    homac: &Homac,
    keys: &CommKeys,
    offset: usize,
    input: &[S::Input],
    vs: &mut VerifyScratch<S>,
) -> Result<(), EngineError> {
    scheme.mask_block(keys, offset as u64, input, &mut vs.wire)?;
    vs.dlanes.clear();
    let mut lanes = [0u64; DIGEST_LANES];
    for x in input {
        scheme.digest(x, &mut lanes);
        vs.dlanes.extend_from_slice(&lanes);
    }
    let first_d = digest_first(offset);
    IntSum::encrypt_in_place(keys, first_d, &mut vs.dlanes, &mut vs.dscratch);
    homac.tag_into(keys, first_d, &vs.dlanes, &mut vs.sigmas);
    vs.packets.clear();
    vs.packets.extend(
        vs.wire
            .drain(..)
            .zip(
                vs.dlanes
                    .chunks_exact(DIGEST_LANES)
                    .zip(vs.sigmas.chunks_exact(DIGEST_LANES)),
            )
            .map(|(c, (d, s))| Packet {
                c,
                d: d.try_into().expect("chunks_exact yields DIGEST_LANES"),
                s: s.try_into().expect("chunks_exact yields DIGEST_LANES"),
            }),
    );
    Ok(())
}

/// Verify, decrypt and digest-check one aggregated block into `vs.dec`.
pub(crate) fn open_block<S: Scheme + 'static>(
    scheme: &mut S,
    homac: &Homac,
    keys: &CommKeys,
    world: usize,
    offset: usize,
    agg: &[Packet<S::Wire>],
    vs: &mut VerifyScratch<S>,
) -> Result<(), EngineError> {
    vs.wire.clear();
    vs.d_agg.clear();
    vs.s_agg.clear();
    for p in agg {
        vs.wire.push(p.c.clone());
        vs.d_agg.extend_from_slice(&p.d);
        vs.s_agg.extend_from_slice(&p.s);
    }
    let first_d = digest_first(offset);
    if !homac.verify(keys, first_d, &vs.d_agg, &vs.s_agg) {
        return Err(EngineError::Verification(VerificationError));
    }
    IntSum::decrypt_in_place(keys, first_d, &mut vs.d_agg, &mut vs.dscratch);
    scheme.unmask_block(keys, offset as u64, &vs.wire, &mut vs.dec);
    for (i, r) in vs.dec.iter().enumerate() {
        let lanes: [u64; DIGEST_LANES] = vs.d_agg[i * DIGEST_LANES..(i + 1) * DIGEST_LANES]
            .try_into()
            .expect("lane slice has DIGEST_LANES words");
        if !scheme.digest_check(r, &lanes, world) {
            return Err(EngineError::Verification(VerificationError));
        }
    }
    Ok(())
}

// ---- single-origin cell transport (allgather / alltoall) ----------------

/// Staging set for the cell transport, leased for one call: the XOR pad
/// slice, the outbound/recycled cell buffer, and (verified mode) the
/// split ciphertext/tag buffers.
pub(crate) struct CellScratch {
    pub(crate) pad: Vec<u64>,
    pub(crate) cells: Vec<u64>,
    pub(crate) sigmas: Vec<u64>,
    pub(crate) tagged: Vec<Tagged<u64>>,
}

impl CellScratch {
    pub(crate) fn lease(arena: &mut ScratchArena) -> CellScratch {
        CellScratch {
            pad: arena.take_vec(),
            cells: arena.take_vec(),
            sigmas: arena.take_vec(),
            tagged: arena.take_vec(),
        }
    }

    pub(crate) fn restore(self, arena: &mut ScratchArena) {
        arena.put_vec(self.pad);
        arena.put_vec(self.cells);
        arena.put_vec(self.sigmas);
        arena.put_vec(self.tagged);
    }
}

/// Fill `cs.pad` with `n` words of the epoch's collective keystream
/// starting at word index `first`.
fn fill_pad(keys: &CommKeys, first: u64, n: usize, cs: &mut CellScratch) {
    cs.pad.clear();
    cs.pad.resize(n, 0);
    keystream_u64(keys.prf(), keys.base_collective(), first, &mut cs.pad);
}

/// Encode `input` into padded cells (left in `cs.cells`): cell `j` is
/// `cell_encode(input[j]) XOR pad(first + j)`. Pad word indices are the
/// element's position in the collective's global coordinate space, so
/// every (origin, position) pair draws a distinct keystream word.
pub(crate) fn seal_cells<S: Scheme>(
    keys: &CommKeys,
    first: u64,
    input: &[S::Input],
    cs: &mut CellScratch,
) {
    fill_pad(keys, first, input.len(), cs);
    cs.cells.clear();
    cs.cells.extend(
        input
            .iter()
            .zip(&cs.pad)
            .map(|(x, p)| S::cell_encode(x) ^ p),
    );
}

/// Decode padded cells into `out` (which must be pre-sized to
/// `cells.len()`), the inverse of [`seal_cells`] at the same `first`.
pub(crate) fn open_cells<S: Scheme>(
    keys: &CommKeys,
    first: u64,
    cells: &[u64],
    cs: &mut CellScratch,
    out: &mut [S::Input],
) {
    debug_assert_eq!(cells.len(), out.len());
    fill_pad(keys, first, cells.len(), cs);
    for ((o, c), p) in out.iter_mut().zip(cells).zip(&cs.pad) {
        *o = S::cell_decode(c ^ p);
    }
}

/// [`seal_cells`] plus a shared-stream HoMAC tag per cell (left in
/// `cs.tagged`). Tags are computed over the *padded* cell at MAC index
/// `DIGEST_BASE + first + j` — offset from the pad indices so the tag
/// stream never reuses a pad word — and verify on any rank, because the
/// collective stream is common to the whole communicator.
pub(crate) fn seal_cells_tagged<S: Scheme>(
    keys: &CommKeys,
    homac: &Homac,
    first: u64,
    input: &[S::Input],
    cs: &mut CellScratch,
) {
    seal_cells::<S>(keys, first, input, cs);
    homac.tag_shared(
        keys.base_collective(),
        DIGEST_BASE + first,
        &cs.cells,
        &mut cs.sigmas,
    );
    cs.tagged.clear();
    cs.tagged.extend(
        cs.cells
            .iter()
            .zip(&cs.sigmas)
            .map(|(c, s)| Tagged { c: *c, sigma: *s }),
    );
}

/// Verify and decode tagged cells into `out` (pre-sized to
/// `cells.len()`); rejects the whole segment if any tag fails.
pub(crate) fn open_cells_tagged<S: Scheme>(
    keys: &CommKeys,
    homac: &Homac,
    first: u64,
    cells: &[Tagged<u64>],
    cs: &mut CellScratch,
    out: &mut [S::Input],
) -> Result<(), EngineError> {
    cs.cells.clear();
    cs.sigmas.clear();
    for t in cells {
        cs.cells.push(t.c);
        cs.sigmas.push(t.sigma);
    }
    if !homac.verify_shared(
        keys.base_collective(),
        DIGEST_BASE + first,
        &cs.cells,
        &cs.sigmas,
    ) {
        return Err(EngineError::Verification(VerificationError));
    }
    fill_pad(keys, first, cells.len(), cs);
    for ((o, t), p) in out.iter_mut().zip(cells).zip(&cs.pad) {
        *o = S::cell_decode(t.c ^ p);
    }
    Ok(())
}
