//! The ring allreduce, factored: reduce-scatter and allgather as
//! standalone encrypted collectives.
//!
//! [`SecureComm::reduce_scatter_with`] is the ring's reduce phase — full
//! HEAR masking, homomorphic combine, verified [`Packet`]s — ending with
//! each rank holding its fully reduced chunk. [`SecureComm::allgather_with`]
//! is the distribution phase alone, on the thinner single-origin cell
//! transport (no combine happens, so elements ride as lossless XOR-padded
//! `u64` cells with optional shared-stream HoMAC tags). Composing the two
//! reproduces the fused ring allreduce bit for bit; underneath they share
//! one hop loop in `hear_mpi`, so the three can never drift apart.

use super::cfg::{ChunkMode, EngineCfg, EngineError};
use super::packet::{
    open_block, open_cells, open_cells_tagged, packet_op, seal_block, seal_cells,
    seal_cells_tagged, CellScratch, Packet, VerifyScratch,
};
use super::retry::{attempt_tag, RetryCtl, Step};
use super::DEPTH;
use crate::secure::{SecureComm, Tagged};
use hear_core::{Homac, Scheme};
use hear_mpi::{CommError, Request};
use std::collections::VecDeque;

/// Bounds `(start, end)` of rank `r`'s reduce-scatter share of an
/// `n`-element block — the same chunking as
/// [`hear_mpi::ring_chunk_bounds`], computed without the per-rank vector.
fn share_bounds(n: usize, world: usize, r: usize) -> (usize, usize) {
    let base = n / world;
    let extra = n % world;
    let start = r * base + r.min(extra);
    (start, start + base + usize::from(r < extra))
}

/// Fold a ring-native retry decision: the factored phases run on the host
/// ring only, so a `Degrade` (which can only mean "leave the switch") is
/// just another retry.
fn ring_step(step: Step) -> Result<(), EngineError> {
    match step {
        Step::Retry | Step::Degrade => Ok(()),
        Step::Fail(e) => Err(e),
    }
}

impl SecureComm {
    /// This rank's share bounds `(start, end)` for a [`ChunkMode::Sync`]
    /// [`SecureComm::reduce_scatter_with`] over an `n`-element vector —
    /// the shard layout a ZeRO-style sharded optimizer owns.
    pub fn shard_bounds(&self, n: usize) -> (usize, usize) {
        share_bounds(n, self.world(), self.rank())
    }

    /// Encrypted ring reduce-scatter: every rank contributes an equal
    /// `data`, and receives the fully reduced elements of its own share of
    /// each block (for [`ChunkMode::Sync`], the contiguous global chunk
    /// given by [`SecureComm::shard_bounds`]). Same masking, combine, and
    /// verified packets as [`SecureComm::allreduce_with`] — it *is* the
    /// ring allreduce's first phase, stopped halfway.
    pub fn reduce_scatter_with<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        cfg: EngineCfg,
    ) -> Result<Vec<S::Input>, EngineError> {
        let mut out = Vec::new();
        self.reduce_scatter_with_into(scheme, data, &mut out, cfg)?;
        Ok(out)
    }

    /// [`SecureComm::reduce_scatter_with`] writing into a caller-provided
    /// vector (cleared, then the per-block shares are appended in block
    /// order). Steady-state allocation-free on the integer paths, like
    /// the other `*_into` entry points. Under
    /// [`PeerDeadPolicy::ShrinkAndContinue`](super::cfg::PeerDeadPolicy)
    /// a dead member triggers membership reconfiguration and a re-run
    /// over the survivors — note the share layout then follows the
    /// *shrunk* world ([`SecureComm::shard_bounds`] reflects it).
    pub fn reduce_scatter_with_into<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut Vec<S::Input>,
        cfg: EngineCfg,
    ) -> Result<(), EngineError> {
        self.with_shrink(cfg.retry, |sc| {
            sc.reduce_scatter_attempt(scheme, data, out, cfg)
        })
    }

    /// One full reduce-scatter attempt over the current membership (the
    /// shrink-and-continue re-run target; `out` is cleared at entry).
    pub(crate) fn reduce_scatter_attempt<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut Vec<S::Input>,
        cfg: EngineCfg,
    ) -> Result<(), EngineError> {
        let block = match cfg.chunk {
            ChunkMode::Sync => data.len().max(1),
            ChunkMode::Blocked(b) | ChunkMode::Pipelined(b) => {
                assert!(b > 0, "block size must be positive");
                b
            }
        };
        let _span = if cfg.verified {
            hear_telemetry::span!("secure_reduce_scatter_verified", elems = data.len())
        } else {
            hear_telemetry::span!("secure_reduce_scatter", elems = data.len())
        };
        let homac = if cfg.verified {
            assert!(
                self.world() <= S::MAX_VERIFIED_WORLD,
                "{} digest verification is sound only up to {} ranks",
                S::NAME,
                S::MAX_VERIFIED_WORLD
            );
            Some(
                self.homac
                    .clone()
                    .expect("enable verification with with_homac()"),
            )
        } else {
            None
        };
        self.keys.advance();
        out.clear();
        if data.is_empty() {
            return Ok(());
        }
        self.submit_prefetch(scheme.noise_width(), data.len());
        if self.world() == 1 {
            // The single rank owns the whole vector; mask/unmask locally
            // so encode/decode lossiness still applies, like allreduce.
            return self.run_local(scheme, data, out);
        }
        let nblocks = (data.len() as u64).div_ceil(block as u64);
        let base_tag = self.comm.reserve_coll_tags(nblocks);
        let mut ctl = RetryCtl::new(cfg.retry);
        match (cfg.chunk, homac) {
            (ChunkMode::Pipelined(_), None) => {
                self.rs_plain_pipelined(scheme, data, out, block, base_tag, &mut ctl)
            }
            (ChunkMode::Pipelined(_), Some(h)) => {
                self.rs_verified_pipelined(scheme, data, out, block, base_tag, &mut ctl, &h)
            }
            (_, None) => self.rs_plain_sync(scheme, data, out, block, base_tag, &mut ctl),
            (_, Some(h)) => self.rs_verified_sync(scheme, data, out, block, base_tag, &mut ctl, &h),
        }
    }

    /// One plain reduce-scatter block with the attempt loop: mask the
    /// whole block → ring reduce-scatter → unmask this rank's share at
    /// its global offset, appending to `out`.
    #[allow(clippy::too_many_arguments)]
    fn rs_plain_block_sync<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut Vec<S::Input>,
        block: usize,
        offset: usize,
        block_idx: u64,
        base_tag: u64,
        ctl: &mut RetryCtl,
        wire: &mut Vec<S::Wire>,
        dec: &mut Vec<S::Input>,
        seg: &mut Vec<S::Wire>,
    ) -> Result<(), EngineError> {
        let end = (offset + block).min(data.len());
        let (s_r, _) = share_bounds(end - offset, self.world(), self.rank());
        loop {
            scheme.mask_slice(&self.keys, offset as u64, &data[offset..end], wire)?;
            let tag = attempt_tag(base_tag, block_idx, ctl.attempt);
            let deadline = ctl.deadline();
            match self.comm.try_reduce_scatter_tagged_with_seg(
                tag,
                std::mem::take(wire),
                S::op,
                seg,
                deadline,
            ) {
                Ok(share) => {
                    scheme.unmask_slice(&self.keys, (offset + s_r) as u64, &share, dec);
                    out.extend_from_slice(dec);
                    *wire = share;
                    return Ok(());
                }
                Err(e) => ring_step(ctl.on_error(EngineError::Comm(e)))?,
            }
        }
    }

    fn rs_plain_sync<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut Vec<S::Input>,
        block: usize,
        base_tag: u64,
        ctl: &mut RetryCtl,
    ) -> Result<(), EngineError> {
        let mut wire: Vec<S::Wire> = self.arena.take_vec();
        let mut dec: Vec<S::Input> = self.arena.take_vec();
        let mut seg: Vec<S::Wire> = self.arena.take_vec();
        let mut failed = None;
        let (mut offset, mut block_idx) = (0usize, 0u64);
        while offset < data.len() {
            if let Err(e) = self.rs_plain_block_sync(
                scheme, data, out, block, offset, block_idx, base_tag, ctl, &mut wire, &mut dec,
                &mut seg,
            ) {
                failed = Some(e);
                break;
            }
            offset = (offset + block).min(data.len());
            block_idx += 1;
        }
        self.arena.put_vec(wire);
        self.arena.put_vec(dec);
        self.arena.put_vec(seg);
        failed.map_or(Ok(()), Err)
    }

    #[allow(clippy::too_many_arguments)]
    fn rs_plain_pipelined<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut Vec<S::Input>,
        block: usize,
        base_tag: u64,
        ctl: &mut RetryCtl,
    ) -> Result<(), EngineError> {
        #[allow(clippy::type_complexity)]
        let mut inflight: VecDeque<(usize, u64, Request<Result<Vec<S::Wire>, CommError>>)> =
            VecDeque::with_capacity(DEPTH);
        let mut wire: Vec<S::Wire> = self.arena.take_vec();
        let mut dec: Vec<S::Input> = self.arena.take_vec();
        let mut seg: Vec<S::Wire> = self.arena.take_vec();
        let mut failed = None;
        let (mut offset, mut block_idx) = (0usize, 0u64);
        let drain = |sc: &mut Self,
                     scheme: &mut S,
                     o: usize,
                     bi: u64,
                     req: Request<Result<Vec<S::Wire>, CommError>>,
                     ctl: &mut RetryCtl,
                     wire: &mut Vec<S::Wire>,
                     dec: &mut Vec<S::Input>,
                     seg: &mut Vec<S::Wire>,
                     out: &mut Vec<S::Input>|
         -> Result<(), EngineError> {
            let res = {
                let _w = hear_telemetry::span!("pipeline_wait", offset = o);
                req.wait()
            };
            hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, -1);
            match res {
                Ok(share) => {
                    let end = (o + block).min(data.len());
                    let (s_r, _) = share_bounds(end - o, sc.world(), sc.rank());
                    scheme.unmask_slice(&sc.keys, (o + s_r) as u64, &share, dec);
                    out.extend_from_slice(dec);
                    *wire = share;
                    Ok(())
                }
                Err(e) => {
                    ring_step(ctl.on_error(EngineError::Comm(e)))?;
                    sc.rs_plain_block_sync(
                        scheme, data, out, block, o, bi, base_tag, ctl, wire, dec, seg,
                    )
                }
            }
        };
        while offset < data.len() {
            let end = (offset + block).min(data.len());
            if let Err(e) =
                scheme.mask_block(&self.keys, offset as u64, &data[offset..end], &mut wire)
            {
                failed = Some(EngineError::from(e));
                break;
            }
            hear_telemetry::incr(hear_telemetry::Metric::PipelineBlocks);
            hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, 1);
            let tag = attempt_tag(base_tag, block_idx, ctl.attempt);
            let deadline = ctl.deadline();
            inflight.push_back((
                offset,
                block_idx,
                self.comm.try_ireduce_scatter_tagged(
                    tag,
                    std::mem::take(&mut wire),
                    S::op,
                    deadline,
                ),
            ));
            if inflight.len() >= DEPTH {
                let (o, bi, req) = inflight.pop_front().expect("non-empty");
                if let Err(e) = drain(
                    self, scheme, o, bi, req, ctl, &mut wire, &mut dec, &mut seg, out,
                ) {
                    failed = Some(e);
                    break;
                }
            }
            offset = end;
            block_idx += 1;
        }
        if failed.is_none() {
            while let Some((o, bi, req)) = inflight.pop_front() {
                if let Err(e) = drain(
                    self, scheme, o, bi, req, ctl, &mut wire, &mut dec, &mut seg, out,
                ) {
                    failed = Some(e);
                    break;
                }
            }
        }
        self.arena.put_vec(wire);
        self.arena.put_vec(dec);
        self.arena.put_vec(seg);
        failed.map_or(Ok(()), Err)
    }

    /// One verified reduce-scatter block: seal the whole block (digest
    /// lanes at global indices), ring-reduce the packets, then open this
    /// rank's share at its share offset — the per-element digest PRF
    /// indices line up because they are functions of the global element
    /// index alone.
    #[allow(clippy::too_many_arguments)]
    fn rs_verified_block_sync<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        homac: &Homac,
        data: &[S::Input],
        out: &mut Vec<S::Input>,
        block: usize,
        offset: usize,
        block_idx: u64,
        base_tag: u64,
        ctl: &mut RetryCtl,
        vs: &mut VerifyScratch<S>,
        seg: &mut Vec<Packet<S::Wire>>,
    ) -> Result<(), EngineError> {
        let world = self.world();
        let end = (offset + block).min(data.len());
        let (s_r, _) = share_bounds(end - offset, world, self.rank());
        loop {
            seal_block(scheme, homac, &self.keys, offset, &data[offset..end], vs)?;
            let tag = attempt_tag(base_tag, block_idx, ctl.attempt);
            let deadline = ctl.deadline();
            let step = match self.comm.try_reduce_scatter_tagged_with_seg(
                tag,
                std::mem::take(&mut vs.packets),
                packet_op::<S>,
                seg,
                deadline,
            ) {
                Ok(agg) => {
                    match open_block(scheme, homac, &self.keys, world, offset + s_r, &agg, vs) {
                        Ok(()) => {
                            out.extend_from_slice(&vs.dec);
                            vs.packets = agg;
                            return Ok(());
                        }
                        Err(e) => ctl.on_error(e),
                    }
                }
                Err(e) => ctl.on_error(EngineError::Comm(e)),
            };
            ring_step(step)?;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn rs_verified_sync<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut Vec<S::Input>,
        block: usize,
        base_tag: u64,
        ctl: &mut RetryCtl,
        homac: &Homac,
    ) -> Result<(), EngineError> {
        let mut vs = VerifyScratch::<S>::lease(&mut self.arena);
        let mut seg: Vec<Packet<S::Wire>> = self.arena.take_vec();
        let mut failed = None;
        let (mut offset, mut block_idx) = (0usize, 0u64);
        while offset < data.len() {
            if let Err(e) = self.rs_verified_block_sync(
                scheme, homac, data, out, block, offset, block_idx, base_tag, ctl, &mut vs,
                &mut seg,
            ) {
                failed = Some(e);
                break;
            }
            offset = (offset + block).min(data.len());
            block_idx += 1;
        }
        vs.restore(&mut self.arena);
        self.arena.put_vec(seg);
        failed.map_or(Ok(()), Err)
    }

    #[allow(clippy::too_many_arguments)]
    fn rs_verified_pipelined<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut Vec<S::Input>,
        block: usize,
        base_tag: u64,
        ctl: &mut RetryCtl,
        homac: &Homac,
    ) -> Result<(), EngineError> {
        #[allow(clippy::type_complexity)]
        let mut inflight: VecDeque<(
            usize,
            u64,
            Request<Result<Vec<Packet<S::Wire>>, CommError>>,
        )> = VecDeque::with_capacity(DEPTH);
        let mut vs = VerifyScratch::<S>::lease(&mut self.arena);
        let mut seg: Vec<Packet<S::Wire>> = self.arena.take_vec();
        let mut failed = None;
        let (mut offset, mut block_idx) = (0usize, 0u64);
        let world = self.world();
        let rank = self.rank();
        let drain = |sc: &mut Self,
                     scheme: &mut S,
                     o: usize,
                     bi: u64,
                     req: Request<Result<Vec<Packet<S::Wire>>, CommError>>,
                     ctl: &mut RetryCtl,
                     vs: &mut VerifyScratch<S>,
                     seg: &mut Vec<Packet<S::Wire>>,
                     out: &mut Vec<S::Input>|
         -> Result<(), EngineError> {
            let res = {
                let _w = hear_telemetry::span!("pipeline_wait", offset = o);
                req.wait()
            };
            hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, -1);
            let end = (o + block).min(data.len());
            let (s_r, _) = share_bounds(end - o, world, rank);
            let step = match res {
                Ok(agg) => match open_block(scheme, homac, &sc.keys, world, o + s_r, &agg, vs) {
                    Ok(()) => {
                        out.extend_from_slice(&vs.dec);
                        vs.packets = agg;
                        return Ok(());
                    }
                    Err(e) => ctl.on_error(e),
                },
                Err(e) => ctl.on_error(EngineError::Comm(e)),
            };
            ring_step(step)?;
            sc.rs_verified_block_sync(
                scheme, homac, data, out, block, o, bi, base_tag, ctl, vs, seg,
            )
        };
        while offset < data.len() {
            let end = (offset + block).min(data.len());
            if let Err(e) = seal_block(
                scheme,
                homac,
                &self.keys,
                offset,
                &data[offset..end],
                &mut vs,
            ) {
                failed = Some(e);
                break;
            }
            hear_telemetry::incr(hear_telemetry::Metric::PipelineBlocks);
            hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, 1);
            let tag = attempt_tag(base_tag, block_idx, ctl.attempt);
            let deadline = ctl.deadline();
            inflight.push_back((
                offset,
                block_idx,
                self.comm.try_ireduce_scatter_tagged(
                    tag,
                    std::mem::take(&mut vs.packets),
                    packet_op::<S>,
                    deadline,
                ),
            ));
            if inflight.len() >= DEPTH {
                let (o, bi, req) = inflight.pop_front().expect("non-empty");
                if let Err(e) = drain(self, scheme, o, bi, req, ctl, &mut vs, &mut seg, out) {
                    failed = Some(e);
                    break;
                }
            }
            offset = end;
            block_idx += 1;
        }
        if failed.is_none() {
            while let Some((o, bi, req)) = inflight.pop_front() {
                if let Err(e) = drain(self, scheme, o, bi, req, ctl, &mut vs, &mut seg, out) {
                    failed = Some(e);
                    break;
                }
            }
        }
        vs.restore(&mut self.arena);
        self.arena.put_vec(seg);
        failed.map_or(Ok(()), Err)
    }

    /// Encrypted ring allgather: contributions may differ in length per
    /// rank; the result is their rank-ordered concatenation on every
    /// rank. Single-origin transport — elements ride as lossless
    /// XOR-padded `u64` cells, so the gathered values are bit-for-bit the
    /// contributed ones for every scheme, floats included. `scheme` picks
    /// the cell codec only; no reduction algorithm applies.
    pub fn allgather_with<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        mine: &[S::Input],
        cfg: EngineCfg,
    ) -> Result<Vec<S::Input>, EngineError> {
        let mut out = Vec::new();
        self.allgather_with_into(scheme, mine, &mut out, cfg)?;
        Ok(out)
    }

    /// [`SecureComm::allgather_with`] writing into a caller-provided
    /// vector. The output layout is identical across chunk modes: rank
    /// `r`'s contribution occupies `starts[r]..starts[r]+counts[r]`
    /// (rounds scatter their pieces into place). Under
    /// [`PeerDeadPolicy::ShrinkAndContinue`](super::cfg::PeerDeadPolicy)
    /// a dead member triggers membership reconfiguration and a re-run:
    /// the concatenation then covers the survivors only.
    pub fn allgather_with_into<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        mine: &[S::Input],
        out: &mut Vec<S::Input>,
        cfg: EngineCfg,
    ) -> Result<(), EngineError> {
        self.with_shrink(cfg.retry, |sc| sc.allgather_attempt(scheme, mine, out, cfg))
    }

    /// One full allgather attempt over the current membership (the
    /// shrink-and-continue re-run target; `out` is cleared at entry).
    pub(crate) fn allgather_attempt<S: Scheme + 'static>(
        &mut self,
        _scheme: &mut S,
        mine: &[S::Input],
        out: &mut Vec<S::Input>,
        cfg: EngineCfg,
    ) -> Result<(), EngineError> {
        let _span = hear_telemetry::span!("secure_allgather", elems = mine.len());
        let homac = if cfg.verified {
            // The shared-stream MAC has a single contributor per cell, so
            // no world-size soundness bound applies.
            Some(
                self.homac
                    .clone()
                    .expect("enable verification with with_homac()"),
            )
        } else {
            None
        };
        self.keys.advance();
        out.clear();
        if self.world() == 1 {
            // Cells are lossless, so the local path is a plain copy.
            out.extend_from_slice(mine);
            return Ok(());
        }
        let world = self.world();
        let mut ctl = RetryCtl::new(cfg.retry);
        // Counts travel first, on their own reserved tag, so ranks with
        // uneven contributions agree on the layout (and on how many data
        // tags to reserve) before any payload moves.
        let counts_tag = self.comm.reserve_coll_tags(1);
        let mut cseg: Vec<u64> = self.arena.take_vec();
        let mut ones: Vec<usize> = self.arena.take_vec();
        ones.clear();
        ones.resize(world, 1);
        let counts: Vec<u64> = loop {
            let tag = attempt_tag(counts_tag, 0, ctl.attempt);
            let deadline = ctl.deadline();
            match self.comm.try_allgather_tagged_with_seg(
                tag,
                vec![mine.len() as u64],
                &ones,
                &mut cseg,
                deadline,
            ) {
                Ok(c) => break c,
                Err(e) => {
                    if let Err(err) = ring_step(ctl.on_error(EngineError::Comm(e))) {
                        self.arena.put_vec(cseg);
                        self.arena.put_vec(ones);
                        return Err(err);
                    }
                }
            }
        };
        self.arena.put_vec(cseg);
        self.arena.put_vec(ones);
        let mut starts: Vec<u64> = self.arena.take_vec();
        starts.clear();
        let mut total = 0u64;
        for c in &counts {
            starts.push(total);
            total += c;
        }
        if total == 0 {
            self.arena.put_vec(starts);
            return Ok(());
        }
        let b = match cfg.chunk {
            ChunkMode::Sync => counts.iter().copied().max().unwrap_or(0).max(1) as usize,
            ChunkMode::Blocked(x) | ChunkMode::Pipelined(x) => {
                assert!(x > 0, "block size must be positive");
                x
            }
        };
        let nrounds = counts
            .iter()
            .map(|c| c.div_ceil(b as u64))
            .max()
            .unwrap_or(1)
            .max(1);
        let base_tag = self.comm.reserve_coll_tags(nrounds);
        out.resize(total as usize, S::cell_decode(0));
        let pipelined = matches!(cfg.chunk, ChunkMode::Pipelined(_));
        let res = self.ag_rounds::<S>(
            mine,
            out,
            b,
            nrounds,
            base_tag,
            &mut ctl,
            &counts,
            &starts,
            homac.as_ref(),
            pipelined,
        );
        self.arena.put_vec(starts);
        res
    }

    /// Run the allgather rounds: sequential when `pipelined` is false,
    /// otherwise up to [`DEPTH`] rounds posted nonblocking with FIFO
    /// drain (failed posts fall back to the synchronous round, which
    /// retries per the policy).
    #[allow(clippy::too_many_arguments)]
    fn ag_rounds<S: Scheme + 'static>(
        &mut self,
        mine: &[S::Input],
        out: &mut [S::Input],
        b: usize,
        nrounds: u64,
        base_tag: u64,
        ctl: &mut RetryCtl,
        counts: &[u64],
        starts: &[u64],
        homac: Option<&Homac>,
        pipelined: bool,
    ) -> Result<(), EngineError> {
        let mut cs = CellScratch::lease(&mut self.arena);
        let mut seg: Vec<u64> = self.arena.take_vec();
        let mut tseg: Vec<Tagged<u64>> = self.arena.take_vec();
        let mut rcounts: Vec<usize> = self.arena.take_vec();
        let mut failed = None;
        if pipelined {
            failed = self
                .ag_rounds_pipelined::<S>(
                    mine,
                    out,
                    b,
                    nrounds,
                    base_tag,
                    ctl,
                    counts,
                    starts,
                    homac,
                    &mut cs,
                    &mut seg,
                    &mut tseg,
                    &mut rcounts,
                )
                .err();
        } else {
            for k in 0..nrounds {
                if let Err(e) = self.ag_round_sync::<S>(
                    mine,
                    out,
                    b,
                    k,
                    base_tag,
                    ctl,
                    counts,
                    starts,
                    homac,
                    &mut cs,
                    &mut seg,
                    &mut tseg,
                    &mut rcounts,
                ) {
                    failed = Some(e);
                    break;
                }
            }
        }
        cs.restore(&mut self.arena);
        self.arena.put_vec(seg);
        self.arena.put_vec(tseg);
        self.arena.put_vec(rcounts);
        failed.map_or(Ok(()), Err)
    }

    /// One allgather round, synchronously, with the attempt loop.
    #[allow(clippy::too_many_arguments)]
    fn ag_round_sync<S: Scheme + 'static>(
        &mut self,
        mine: &[S::Input],
        out: &mut [S::Input],
        b: usize,
        round: u64,
        base_tag: u64,
        ctl: &mut RetryCtl,
        counts: &[u64],
        starts: &[u64],
        homac: Option<&Homac>,
        cs: &mut CellScratch,
        seg: &mut Vec<u64>,
        tseg: &mut Vec<Tagged<u64>>,
        rcounts: &mut Vec<usize>,
    ) -> Result<(), EngineError> {
        let _world = self.world();
        let rank = self.rank();
        let lo = round as usize * b;
        rcounts.clear();
        rcounts.extend(
            counts
                .iter()
                .map(|c| (*c as usize).saturating_sub(lo).min(b)),
        );
        let piece = &mine[lo.min(mine.len())..(lo + b).min(mine.len())];
        let first = starts[rank] + lo as u64;
        loop {
            let tag = attempt_tag(base_tag, round, ctl.attempt);
            let deadline = ctl.deadline();
            let step = if let Some(h) = homac {
                seal_cells_tagged::<S>(&self.keys, h, first, piece, cs);
                match self.comm.try_allgather_tagged_with_seg(
                    tag,
                    std::mem::take(&mut cs.tagged),
                    rcounts,
                    tseg,
                    deadline,
                ) {
                    Ok(gathered) => {
                        match open_gathered_tagged::<S>(
                            &self.keys, h, &gathered, lo, rcounts, starts, cs, out,
                        ) {
                            Ok(()) => {
                                cs.tagged = gathered;
                                return Ok(());
                            }
                            Err(e) => ctl.on_error(e),
                        }
                    }
                    Err(e) => ctl.on_error(EngineError::Comm(e)),
                }
            } else {
                seal_cells::<S>(&self.keys, first, piece, cs);
                match self.comm.try_allgather_tagged_with_seg(
                    tag,
                    std::mem::take(&mut cs.cells),
                    rcounts,
                    seg,
                    deadline,
                ) {
                    Ok(gathered) => {
                        open_gathered::<S>(&self.keys, &gathered, lo, rcounts, starts, cs, out);
                        cs.cells = gathered;
                        return Ok(());
                    }
                    Err(e) => ctl.on_error(EngineError::Comm(e)),
                }
            };
            ring_step(step)?;
        }
    }

    /// Pipelined allgather rounds: posts carry owned copies of the round's
    /// cells and counts; drains scatter into place (order-independent) and
    /// fall back to [`SecureComm::ag_round_sync`] on failure.
    #[allow(clippy::too_many_arguments)]
    fn ag_rounds_pipelined<S: Scheme + 'static>(
        &mut self,
        mine: &[S::Input],
        out: &mut [S::Input],
        b: usize,
        nrounds: u64,
        base_tag: u64,
        ctl: &mut RetryCtl,
        counts: &[u64],
        starts: &[u64],
        homac: Option<&Homac>,
        cs: &mut CellScratch,
        seg: &mut Vec<u64>,
        tseg: &mut Vec<Tagged<u64>>,
        rcounts: &mut Vec<usize>,
    ) -> Result<(), EngineError> {
        enum Post {
            Plain(Request<Result<Vec<u64>, CommError>>),
            Tagged(Request<Result<Vec<Tagged<u64>>, CommError>>),
        }
        let rank = self.rank();
        let mut inflight: VecDeque<(u64, Post)> = VecDeque::with_capacity(DEPTH);
        let drain = |sc: &mut Self,
                     round: u64,
                     post: Post,
                     ctl: &mut RetryCtl,
                     cs: &mut CellScratch,
                     seg: &mut Vec<u64>,
                     tseg: &mut Vec<Tagged<u64>>,
                     rcounts: &mut Vec<usize>,
                     out: &mut [S::Input]|
         -> Result<(), EngineError> {
            let lo = round as usize * b;
            rcounts.clear();
            rcounts.extend(
                counts
                    .iter()
                    .map(|c| (*c as usize).saturating_sub(lo).min(b)),
            );
            hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, -1);
            let step = match post {
                Post::Plain(req) => match req.wait() {
                    Ok(gathered) => {
                        open_gathered::<S>(&sc.keys, &gathered, lo, rcounts, starts, cs, out);
                        cs.cells = gathered;
                        return Ok(());
                    }
                    Err(e) => ctl.on_error(EngineError::Comm(e)),
                },
                Post::Tagged(req) => match req.wait() {
                    Ok(gathered) => match open_gathered_tagged::<S>(
                        &sc.keys,
                        homac.expect("tagged post implies homac"),
                        &gathered,
                        lo,
                        rcounts,
                        starts,
                        cs,
                        out,
                    ) {
                        Ok(()) => {
                            cs.tagged = gathered;
                            return Ok(());
                        }
                        Err(e) => ctl.on_error(e),
                    },
                    Err(e) => ctl.on_error(EngineError::Comm(e)),
                },
            };
            ring_step(step)?;
            sc.ag_round_sync::<S>(
                mine, out, b, round, base_tag, ctl, counts, starts, homac, cs, seg, tseg, rcounts,
            )
        };
        let mut failed = None;
        for round in 0..nrounds {
            let lo = round as usize * b;
            let piece = &mine[lo.min(mine.len())..(lo + b).min(mine.len())];
            let first = starts[rank] + lo as u64;
            let round_counts: Vec<usize> = counts
                .iter()
                .map(|c| (*c as usize).saturating_sub(lo).min(b))
                .collect();
            hear_telemetry::incr(hear_telemetry::Metric::PipelineBlocks);
            hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, 1);
            let tag = attempt_tag(base_tag, round, ctl.attempt);
            let deadline = ctl.deadline();
            let post = if let Some(h) = homac {
                seal_cells_tagged::<S>(&self.keys, h, first, piece, cs);
                Post::Tagged(self.comm.try_iallgather_tagged(
                    tag,
                    std::mem::take(&mut cs.tagged),
                    round_counts,
                    deadline,
                ))
            } else {
                seal_cells::<S>(&self.keys, first, piece, cs);
                Post::Plain(self.comm.try_iallgather_tagged(
                    tag,
                    std::mem::take(&mut cs.cells),
                    round_counts,
                    deadline,
                ))
            };
            inflight.push_back((round, post));
            if inflight.len() >= DEPTH {
                let (r, post) = inflight.pop_front().expect("non-empty");
                if let Err(e) = drain(self, r, post, ctl, cs, seg, tseg, rcounts, out) {
                    failed = Some(e);
                    break;
                }
            }
        }
        if failed.is_none() {
            while let Some((r, post)) = inflight.pop_front() {
                if let Err(e) = drain(self, r, post, ctl, cs, seg, tseg, rcounts, out) {
                    failed = Some(e);
                    break;
                }
            }
        }
        failed.map_or(Ok(()), Err)
    }
}

/// Scatter one gathered plain round into the output: rank `r`'s piece
/// lands at `starts[r] + lo`, unpadded at its global pad indices.
fn open_gathered<S: Scheme>(
    keys: &hear_core::CommKeys,
    gathered: &[u64],
    lo: usize,
    rcounts: &[usize],
    starts: &[u64],
    cs: &mut CellScratch,
    out: &mut [S::Input],
) {
    let mut pos = 0usize;
    for (r, cnt) in rcounts.iter().enumerate() {
        if *cnt == 0 {
            continue;
        }
        let g0 = starts[r] as usize + lo;
        open_cells::<S>(
            keys,
            g0 as u64,
            &gathered[pos..pos + cnt],
            cs,
            &mut out[g0..g0 + cnt],
        );
        pos += cnt;
    }
}

/// Scatter one gathered verified round into the output, rejecting the
/// round if any rank's segment fails its shared-stream MAC.
#[allow(clippy::too_many_arguments)]
fn open_gathered_tagged<S: Scheme>(
    keys: &hear_core::CommKeys,
    homac: &Homac,
    gathered: &[Tagged<u64>],
    lo: usize,
    rcounts: &[usize],
    starts: &[u64],
    cs: &mut CellScratch,
    out: &mut [S::Input],
) -> Result<(), EngineError> {
    let mut pos = 0usize;
    for (r, cnt) in rcounts.iter().enumerate() {
        if *cnt == 0 {
            continue;
        }
        let g0 = starts[r] as usize + lo;
        open_cells_tagged::<S>(
            keys,
            homac,
            g0 as u64,
            &gathered[pos..pos + cnt],
            cs,
            &mut out[g0..g0 + cnt],
        )?;
        pos += cnt;
    }
    Ok(())
}
