//! The single collective engine.
//!
//! Every public collective on [`SecureComm`] is a thin shim over one of
//! the engine's generic entry points, which compose four orthogonal
//! choices:
//!
//! * **cipher** — any [`Scheme`](hear_core::Scheme) (Table 2's six rows
//!   plus fixed point),
//! * **algorithm** — [`ReduceAlgo`]: recursive doubling, ring, or the
//!   in-network switch tree (allreduce only; the factored phases are
//!   ring-native),
//! * **chunking** — [`ChunkMode`]: one synchronous block, strictly
//!   sequential blocks, or the depth-2 pipeline of paper §6 / Fig. 6,
//! * **integrity** — optional HoMAC verification (§5.5), uniform across
//!   all schemes.
//!
//! ## The collective set
//!
//! * [`SecureComm::allreduce_with`] — the paper's headline operation; on
//!   [`ReduceAlgo::Ring`] it is *exactly* the composition of the two
//!   phases below (one shared hop loop in `hear_mpi` drives all three).
//! * [`SecureComm::reduce_scatter_with`] — the ring's first phase alone:
//!   each rank ends with its fully reduced chunk. Same masking, same
//!   homomorphic combine, same verified packets as allreduce.
//! * [`SecureComm::allgather_with`] — the ring's second phase alone,
//!   with a *thinner* packet shape: single-origin data is never combined
//!   by the network, so elements travel as lossless `u64` cells
//!   ([`hear_core::Scheme::cell_encode`]) XOR-padded on the epoch's
//!   collective keystream, optionally carrying shared-stream HoMAC tags.
//! * [`SecureComm::alltoall_with`] — personalized exchange on the same
//!   cell transport, one disjoint pad slice per directed pair.
//!
//! ## Steady-state memory behavior
//!
//! Every staging vector the engine needs — wire ciphertexts, decrypted
//! blocks, digest lanes, HoMAC tags, verified packets, ring segments,
//! pads and cells — is leased from the per-communicator [`ScratchArena`]
//! and returned after the call, and the aggregate buffer coming back from
//! the transport is recycled as the next block's wire buffer. Combined
//! with the callee-provided output of the `*_into` variants, the integer
//! hot paths perform **zero heap allocation** after warmup.
//!
//! ## Keystream prefetch
//!
//! Right after the per-call key advance, the reduction entry points plan
//! the *next* epoch's noise streams
//! ([`hear_core::CommKeys::peek_next_epoch`] makes the target epoch
//! visible without advancing) and hand the plan to the
//! [`crate::prefetch::Prefetcher`] worker, which generates the PRF blocks
//! during this call's communication phase. The integer schemes then mask
//! the next call from cache; any misprediction (different length, scheme
//! width, or an extra advance) is a plain cache miss and regenerates
//! inline. Streams are planned only for schemes with a fixed noise lane
//! width ([`hear_core::Scheme::noise_width`]); the verified path's digest
//! streams and the cell transport's collective pads are deliberately left
//! to inline generation.
//!
//! ## Verified transport
//!
//! Verification must work for wire formats (like [`hear_core::Hfp`])
//! whose reduction is not a ring addition, so it does not tag the payload
//! cipher directly. Instead each element carries a *digest*: up to four
//! `u64` summation lanes of the plaintext (defined per scheme, exact for
//! integer and fixed-point data, quantized within the Table 2 lossiness
//! for floats). The lanes are encrypted under the lossless
//! [`hear_core::IntSum`] cipher at PRF indices offset by
//! [`hear_core::DIGEST_BASE`] — disjoint from every payload index — then
//! HoMAC-tagged. The network reduces `(c, d, σ)` packets component-wise;
//! on receipt the engine verifies the tags (any tampering with `d` or `σ`
//! is caught by the MAC), decrypts the lane sums, and checks the
//! decrypted payload against them (any tampering with `c` is caught by
//! the digest). The single-origin collectives use the lighter
//! [`Tagged`](crate::secure::Tagged) shape instead: a shared-stream MAC
//! over each padded cell, verifiable by every rank. Zero-length inputs
//! and single-rank communicators short-circuit uniformly before any
//! transport.

mod allreduce;
mod alltoall;
mod cfg;
mod membership;
mod packet;
mod phases;
mod retry;

pub use cfg::{ChunkMode, EngineCfg, EngineError, PeerDeadPolicy, RetryPolicy};
pub use membership::MembershipChange;
pub(crate) use packet::Packet;

use crate::prefetch::{PrefetchJob, MAX_PREFETCH_BLOCKS, MAX_STREAMS};
use crate::secure::{ReduceAlgo, SecureComm};
use hear_core::{Scheme, StreamPlan};
use hear_mpi::{CommError, Request};
use std::time::Instant;

/// Two blocks in flight overlap encrypt(n+1) and decrypt(n−1) with the
/// reduction of block n.
pub(crate) const DEPTH: usize = 2;

impl SecureComm {
    /// Record the INC→host fallback: the rest of this epoch (and every
    /// later one) runs on the ring, and the degradation is counted once
    /// per affected epoch.
    fn note_degraded(&mut self) {
        self.degraded = true;
        hear_telemetry::incr(hear_telemetry::Metric::DegradedEpochs);
    }

    /// Plan the next epoch's noise streams for the prefetch worker. The
    /// plan predicts that the next call reuses this call's scheme lane
    /// width and element count — a misprediction is a cache miss, never an
    /// error. Schemes without a fixed noise width (floats, products) skip
    /// planning entirely.
    fn submit_prefetch(&mut self, noise_width: Option<usize>, elems: usize) {
        let (Some(w), Some(pf)) = (noise_width, self.prefetch.as_mut()) else {
            return;
        };
        let per = (16 / w).max(1) as u64;
        let nblocks = (elems as u64).div_ceil(per) as usize;
        let nblocks = nblocks.min(MAX_PREFETCH_BLOCKS);
        let epoch = self.keys.peek_next_epoch();
        let (own, next, zero) = self.keys.bases_at(epoch);
        let mut streams: [Option<StreamPlan>; MAX_STREAMS] = [None; MAX_STREAMS];
        let mut n = 0usize;
        for base in [own, next, zero] {
            // Bases coincide on small rings (e.g. world ≤ 2): plan each
            // distinct stream once.
            if streams[..n].iter().flatten().any(|p| p.base == base) {
                continue;
            }
            streams[n] = Some(StreamPlan {
                base,
                first_block: 0,
                nblocks,
            });
            n += 1;
        }
        pf.submit(PrefetchJob { epoch, streams });
    }

    /// Single-rank path: the aggregate of one contribution is itself
    /// (masked and unmasked so encode/decode lossiness still applies).
    fn run_local<S: Scheme>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut Vec<S::Input>,
    ) -> Result<(), EngineError> {
        let mut wire: Vec<S::Wire> = self.arena.take_vec();
        let sealed = scheme.mask_slice(&self.keys, 0, data, &mut wire);
        let result = match sealed {
            Ok(()) => {
                scheme.unmask_slice(&self.keys, 0, &wire, out);
                Ok(())
            }
            Err(e) => Err(e.into()),
        };
        self.arena.put_vec(wire);
        result
    }

    /// The algorithm-selected blocking transport on an explicit attempt
    /// tag and deadline. `seg` is the ring algorithm's hop staging buffer
    /// (arena-leased by the caller); the other algorithms ignore it.
    fn try_transport_sync<T, F>(
        &self,
        tag: u64,
        data: Vec<T>,
        algo: ReduceAlgo,
        op: F,
        seg: &mut Vec<T>,
        deadline: Option<Instant>,
    ) -> Result<Vec<T>, CommError>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T + Send + Sync + Clone + 'static,
    {
        match algo {
            ReduceAlgo::RecursiveDoubling => self
                .comm
                .try_allreduce_owned_tagged(tag, data, op, deadline),
            ReduceAlgo::Ring => self
                .comm
                .try_allreduce_ring_owned_tagged_with_seg(tag, data, op, seg, deadline),
            ReduceAlgo::Switch => self.comm.try_allreduce_inc_tagged(tag, data, op, deadline),
            ReduceAlgo::Hierarchical { group } => self
                .comm
                .try_allreduce_hier_owned_tagged_with_seg(tag, data, op, group, seg, deadline),
        }
    }

    /// The algorithm-selected nonblocking transport on an explicit attempt
    /// tag and deadline.
    fn try_transport_nb<T, F>(
        &self,
        tag: u64,
        data: Vec<T>,
        algo: ReduceAlgo,
        op: F,
        deadline: Option<Instant>,
    ) -> Request<Result<Vec<T>, CommError>>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T + Send + Sync + Clone + 'static,
    {
        match algo {
            ReduceAlgo::RecursiveDoubling => {
                self.comm.try_iallreduce_tagged(tag, data, op, deadline)
            }
            ReduceAlgo::Ring => self
                .comm
                .try_iallreduce_ring_tagged(tag, data, op, deadline),
            ReduceAlgo::Switch => self.comm.try_iallreduce_inc_tagged(tag, data, op, deadline),
            ReduceAlgo::Hierarchical { group } => self
                .comm
                .try_iallreduce_hier_tagged(tag, data, op, group, deadline),
        }
    }
}
