//! Epoch-boundary membership reconfiguration: the shrink-and-continue
//! loop behind every public collective entry point.
//!
//! When an attempt fails because a member rank died, and the caller opted
//! in via [`PeerDeadPolicy::ShrinkAndContinue`], the survivors:
//!
//! 1. **Agree** on the survivor set — a bounded gossip round of
//!    all-to-all suspicion bitmasks on a reserved tag lane, seeded from
//!    the transport's dead-endpoint flags (heartbeat miss budget on TCP,
//!    fault-plan kills in memory).
//! 2. **Rebase** the HEAR key schedule — [`CommKeys::rebase`] derives a
//!    fresh ring of starting keys and a fresh collective key over the
//!    survivor order from the shared progression PRF, so no extra key
//!    exchange is needed and no pad position collides with pre-shrink
//!    traffic.
//! 3. **Shrink** the communicator — [`Communicator::shrink`] remaps the
//!    survivor ranks onto a fresh context id (ring and hierarchical
//!    neighbor tables, `shard_bounds`, and tag lanes all follow the new
//!    world transparently).
//! 4. **Re-run** the collective over the survivors: the caller gets a
//!    correct aggregate of the survivors' contributions plus a
//!    [`MembershipChange`] report instead of an error.
//!
//! ## Failure-detector assumption
//!
//! Agreement is sound for crash-stop failures surfaced through the
//! transport's dead flags, which every rank observes consistently. A
//! slow-but-alive rank that misses the (generous) agreement deadline can
//! be falsely evicted; if suspicion diverges across survivors the
//! re-run's collectives time out and the original error surfaces —
//! safety (no wrong result) is preserved, only liveness of the shrink is
//! lost. See DESIGN.md §11.

use super::cfg::{EngineError, PeerDeadPolicy, RetryPolicy};
use crate::prefetch::Prefetcher;
use crate::secure::SecureComm;
use hear_core::KeystreamCache;
use hear_mpi::{CommError, ATTEMPT_TAG_STRIDE, COLL_BLOCK_TAG_STRIDE};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Gossip stages of the suspicion-bitmask exchange. Two stages propagate
/// any single observation to every survivor; the third absorbs one
/// asymmetric observation made *during* the exchange.
const AGREE_STAGES: u64 = 3;

/// Tag lane for agreement traffic. Sits far above the collective
/// sequence lanes (`COLL_TAG_BASE + seq·256` would need ~2^38
/// collectives to reach it) and below the context bits, so agreement
/// wires can never match collective or user traffic. Successive shrink
/// rounds run on distinct blocks keyed by the membership epoch.
const AGREE_TAG_BASE: u64 = 1 << 46;

/// One completed membership reconfiguration, reported to the caller via
/// [`SecureComm::take_membership_changes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipChange {
    /// Membership epoch this change created (1 = first shrink).
    pub epoch: u64,
    /// Evicted ranks, numbered in the *original* world (what the caller
    /// launched with), not the pre-shrink intermediate numbering.
    pub evicted: Vec<usize>,
    /// World size before the shrink.
    pub old_world: usize,
    /// World size after the shrink.
    pub new_world: usize,
}

impl SecureComm {
    /// The shrink-and-continue loop shared by every collective entry
    /// point: run `attempt`; on a shrink-eligible failure agree on the
    /// survivors, rebase keys and communicator, and re-run. The world
    /// strictly shrinks per iteration (and a one-rank world cannot fail
    /// on transport), so the loop is bounded by the initial world size.
    pub(crate) fn with_shrink<F>(
        &mut self,
        policy: RetryPolicy,
        mut attempt: F,
    ) -> Result<(), EngineError>
    where
        F: FnMut(&mut SecureComm) -> Result<(), EngineError>,
    {
        // A permanently-shrunk job keeps announcing itself: operators see
        // the epoch counter move with the traffic, not just once at the
        // eviction (mirroring how sticky INC degradation is counted).
        if !self.evicted.is_empty() {
            hear_telemetry::incr(hear_telemetry::Metric::MembershipEpochs);
        }
        loop {
            match attempt(self) {
                Err(e) if self.shrink_eligible(&e, policy.on_peer_dead) => {
                    let survivors = self.agree_on_survivors(&policy);
                    if survivors.len() == self.world() {
                        // Agreement found no one newly dead: the failure
                        // was not a membership problem after all.
                        return Err(e);
                    }
                    self.shrink_to(&survivors);
                }
                res => return res,
            }
        }
    }

    /// Whether a failed attempt should trigger membership agreement:
    /// the caller opted in, this rank is itself alive, and some *other*
    /// member is transport-dead (a `PeerDead` hit it directly, or the
    /// retries exhausted on timeouts while the corpse stalled the ring).
    fn shrink_eligible(&self, e: &EngineError, policy: PeerDeadPolicy) -> bool {
        if policy != PeerDeadPolicy::ShrinkAndContinue || self.world() <= 1 {
            return false;
        }
        let me = self.rank();
        if self.comm.is_peer_dead(me) {
            // The dead rank's own call must fail, not shrink the world
            // from inside the corpse.
            return false;
        }
        matches!(
            e,
            EngineError::Comm(CommError::PeerDead { .. })
                | EngineError::Comm(CommError::Timeout { .. })
        ) && (0..self.world()).any(|r| r != me && self.comm.is_peer_dead(r))
    }

    /// The gossip round: flood suspicion bitmasks until every survivor
    /// holds the same picture, then return the agreed survivor list (in
    /// current-communicator rank numbering, ascending, self included).
    fn agree_on_survivors(&self, policy: &RetryPolicy) -> Vec<usize> {
        let world = self.world();
        let me = self.rank();
        assert!(
            world <= 64,
            "membership agreement bitmasks support up to 64 ranks"
        );
        let mut mask: u64 = 0;
        for r in (0..world).filter(|&r| r != me) {
            if self.comm.is_peer_dead(r) {
                mask |= 1 << r;
            }
        }
        // Peers that saw only timeouts burn their whole retry budget
        // before entering agreement; wait out that worst case (attempt
        // deadline plus capped backoff per attempt) before suspecting.
        let slice = policy
            .attempt_timeout
            .unwrap_or_else(|| (self.comm.transport_rtt() * 1000).max(Duration::from_millis(200)));
        let wait = slice * (2 * policy.max_attempts + 1);
        let base = AGREE_TAG_BASE + self.membership_epoch * COLL_BLOCK_TAG_STRIDE;
        for stage in 0..AGREE_STAGES {
            let tag = base + stage * ATTEMPT_TAG_STRIDE;
            // Who counted as alive when this stage started: sends and
            // receives pair up against the same snapshot on both ends.
            let stage_mask = mask;
            for r in (0..world).filter(|&r| r != me && stage_mask & (1 << r) == 0) {
                if self.comm.try_send_tagged(r, tag, vec![mask]).is_err() {
                    mask |= 1 << r;
                }
            }
            for r in 0..world {
                if r == me || stage_mask & (1 << r) != 0 || mask & (1 << r) != 0 {
                    continue;
                }
                match self
                    .comm
                    .try_recv_tagged::<u64>(r, tag, Some(Instant::now() + wait))
                {
                    Ok(theirs) => mask |= theirs.first().copied().unwrap_or(0),
                    Err(_) => mask |= 1 << r,
                }
            }
        }
        (0..world)
            .filter(|&r| r == me || mask & (1 << r) == 0)
            .collect()
    }

    /// Execute one agreed shrink: rebase the key schedule over the
    /// survivors at a fresh membership epoch, shrink the communicator,
    /// reattach a fresh keystream cache and prefetch worker, and record
    /// the change (sticky eviction set, per-epoch counters, caller
    /// report).
    fn shrink_to(&mut self, survivors: &[usize]) {
        let old_world = self.world();
        let evicted_now: Vec<usize> = (0..old_world)
            .filter(|r| !survivors.contains(r))
            .map(|r| self.lineage[r])
            .collect();
        self.membership_epoch += 1;
        // Salt: identical on every survivor (shared kc, lockstep epoch
        // counter), distinct per shrink, and fed through the progression
        // PRF's rebase domain — so the post-shrink pads never collide
        // with pre-shrink traffic (DESIGN.md §11).
        let salt = self
            .keys
            .epoch()
            .wrapping_add(self.membership_epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut keys = self.keys.rebase(survivors, salt);
        let cache = KeystreamCache::new();
        keys.attach_cache(Arc::clone(&cache));
        if self.prefetch.is_some() {
            self.prefetch = Some(Prefetcher::new(keys.prf().clone(), cache));
        }
        if self.comm.switch_topology().is_some() {
            // The shrunk communicator drops the INC tree; route later
            // Switch-algo epochs straight to the host ring.
            self.degraded = true;
        }
        self.comm = self.comm.shrink(survivors);
        self.keys = keys;
        self.lineage = survivors.iter().map(|&r| self.lineage[r]).collect();
        hear_telemetry::incr(hear_telemetry::Metric::MembershipEpochs);
        hear_telemetry::add(
            hear_telemetry::Metric::RanksEvicted,
            evicted_now.len() as u64,
        );
        self.membership_changes.push(MembershipChange {
            epoch: self.membership_epoch,
            evicted: evicted_now.clone(),
            old_world,
            new_world: survivors.len(),
        });
        self.evicted.extend(evicted_now);
    }
}
