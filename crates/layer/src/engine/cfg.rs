//! Engine call configuration: chunking, retry policy, and the unified
//! error type.

use crate::secure::{ReduceAlgo, VerificationError};
use hear_mpi::CommError;
use std::time::Duration;

/// How the engine chunks the payload across collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkMode {
    /// One blocking collective over the whole vector.
    #[default]
    Sync,
    /// Fixed-size blocks, strictly one after another (Fig. 6's "Naïve
    /// (sync)" baseline).
    Blocked(usize),
    /// Fixed-size blocks with two collectives in flight, overlapping
    /// encrypt(n+1) / decrypt(n−1) with the reduction of block n (§6).
    Pipelined(usize),
}

/// What a collective does when a member rank is declared dead
/// mid-operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PeerDeadPolicy {
    /// Surface a typed [`EngineError::Comm`] with
    /// [`CommError::PeerDead`] — the legacy fail-fast contract.
    #[default]
    Fail,
    /// Survivors run a membership-agreement round, re-derive the ring
    /// keys over the shrunk world, and re-run the collective: the caller
    /// gets a correct allreduce of the *survivors'* contributions plus a
    /// [`MembershipChange`](crate::MembershipChange) report instead of
    /// an error.
    ShrinkAndContinue,
}

/// How the engine reacts to communication and verification failures.
///
/// Defaults reproduce the legacy behavior: one attempt, no deadline, but
/// graceful INC→host degradation stays on (it only triggers when the
/// switch tree is actually unreachable, which a healthy run never sees).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per block (1 = no retries). Timeouts and
    /// verification failures consume retries; `SwitchDown` degradation
    /// does not.
    pub max_attempts: u32,
    /// Sleep before the first retry; doubled after each one but never
    /// beyond [`RetryPolicy::attempt_timeout`] (sleeping longer than one
    /// attempt's deadline would burn the remaining budget idling).
    pub backoff: Duration,
    /// Deadline applied to each attempt's collective; `None` waits
    /// forever (legacy blocking semantics).
    pub attempt_timeout: Option<Duration>,
    /// Fall back to the host ring when the INC switch tree reports
    /// `SwitchDown`, instead of failing the call.
    pub degrade_on_switch_down: bool,
    /// React to a dead member: fail fast (default) or shrink the
    /// membership and continue over the survivors.
    pub on_peer_dead: PeerDeadPolicy,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
            attempt_timeout: None,
            degrade_on_switch_down: true,
            on_peer_dead: PeerDeadPolicy::Fail,
        }
    }
}

impl RetryPolicy {
    /// `retries` extra attempts after the first (so `retries(2)` allows
    /// three attempts total).
    pub fn retries(retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1 + retries,
            ..RetryPolicy::default()
        }
    }

    /// Initial backoff before the first retry (doubled per retry).
    pub fn with_backoff(mut self, backoff: Duration) -> RetryPolicy {
        self.backoff = backoff;
        self
    }

    /// Bound each attempt's collective by a deadline.
    pub fn with_attempt_timeout(mut self, timeout: Duration) -> RetryPolicy {
        self.attempt_timeout = Some(timeout);
        self
    }

    /// Fail the call on `SwitchDown` instead of degrading to the ring.
    pub fn no_degrade(mut self) -> RetryPolicy {
        self.degrade_on_switch_down = false;
        self
    }

    /// Choose the reaction to a dead member rank
    /// ([`PeerDeadPolicy::ShrinkAndContinue`] opts into membership
    /// reconfiguration).
    pub fn on_peer_dead(mut self, policy: PeerDeadPolicy) -> RetryPolicy {
        self.on_peer_dead = policy;
        self
    }
}

/// Full configuration of one engine call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineCfg {
    pub chunk: ChunkMode,
    /// Attach the HoMAC-authenticated digest side-channel (§5.5).
    pub verified: bool,
    /// Reduction algorithm override; `None` uses the communicator's
    /// [`SecureComm::with_algo`](crate::secure::SecureComm::with_algo)
    /// setting. The factored phases and alltoall are ring/pairwise-native
    /// and ignore this field.
    pub algo: Option<ReduceAlgo>,
    /// Failure handling: bounded retries, per-attempt deadlines, and
    /// INC→host degradation.
    pub retry: RetryPolicy,
}

impl EngineCfg {
    /// One blocking collective (the default).
    pub fn sync() -> EngineCfg {
        EngineCfg::default()
    }

    /// Sequential blocks of `block_elems` elements.
    pub fn blocked(block_elems: usize) -> EngineCfg {
        EngineCfg {
            chunk: ChunkMode::Blocked(block_elems),
            ..EngineCfg::default()
        }
    }

    /// Pipelined blocks of `block_elems` elements.
    pub fn pipelined(block_elems: usize) -> EngineCfg {
        EngineCfg {
            chunk: ChunkMode::Pipelined(block_elems),
            ..EngineCfg::default()
        }
    }

    /// Enable HoMAC result verification (requires
    /// [`SecureComm::with_homac`](crate::secure::SecureComm::with_homac)).
    pub fn verified(mut self) -> EngineCfg {
        self.verified = true;
        self
    }

    /// Override the reduction algorithm for this call only.
    pub fn with_algo(mut self, algo: ReduceAlgo) -> EngineCfg {
        self.algo = Some(algo);
        self
    }

    /// Attach a failure-handling policy to this call.
    pub fn with_retry(mut self, retry: RetryPolicy) -> EngineCfg {
        self.retry = retry;
        self
    }
}

/// Why an engine call failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// Float encoding rejected the input (NaN/Inf/overflow).
    Hfp(hear_core::HfpError),
    /// HoMAC or digest verification rejected the aggregate (and the
    /// retry budget, if any, is exhausted).
    Verification(VerificationError),
    /// The transport failed (timeout, dead peer, downed switch) beyond
    /// what the [`RetryPolicy`] could absorb.
    Comm(CommError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Hfp(e) => write!(f, "{e}"),
            EngineError::Verification(e) => write!(f, "{e}"),
            EngineError::Comm(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<hear_core::HfpError> for EngineError {
    fn from(e: hear_core::HfpError) -> Self {
        EngineError::Hfp(e)
    }
}

impl From<VerificationError> for EngineError {
    fn from(e: VerificationError) -> Self {
        EngineError::Verification(e)
    }
}

impl From<CommError> for EngineError {
    fn from(e: CommError) -> Self {
        EngineError::Comm(e)
    }
}

impl EngineError {
    /// Unwrap into the float-encoding error. Panics on any other error —
    /// use only on plain (non-verified) calls over a healthy fabric,
    /// which can fail in no other way.
    pub fn into_hfp(self) -> hear_core::HfpError {
        match self {
            EngineError::Hfp(e) => e,
            EngineError::Verification(_) => {
                unreachable!("plain engine calls cannot fail verification")
            }
            EngineError::Comm(e) => {
                panic!("allreduce transport failed: {e}")
            }
        }
    }
}
