//! The fused allreduce entry point and its four chunk-mode runners.
//!
//! On [`ReduceAlgo::Ring`] the transport underneath is literally
//! reduce-scatter followed by allgather — one shared hop loop in
//! `hear_mpi` drives both phases — so this entry point and the factored
//! [`SecureComm::reduce_scatter_with`] /
//! [`SecureComm::allgather_with`](crate::secure::SecureComm) pair can
//! never drift apart.

use super::cfg::{ChunkMode, EngineCfg, EngineError};
use super::packet::{open_block, packet_op, seal_block, Packet, VerifyScratch};
use super::retry::{attempt_tag, RetryCtl, Step};
use super::DEPTH;
use crate::secure::{ReduceAlgo, SecureComm};
use hear_core::{Homac, Scheme};
use hear_mpi::{CommError, Request};
use std::collections::VecDeque;

impl SecureComm {
    /// The generic secured allreduce: any [`Scheme`] × any [`ReduceAlgo`] ×
    /// any [`ChunkMode`] × optional verification. Every legacy
    /// `allreduce_*` method is a shim over this, and
    /// [`SecureComm::pmpi_allreduce`] routes runtime-typed calls here.
    pub fn allreduce_with<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        cfg: EngineCfg,
    ) -> Result<Vec<S::Input>, EngineError> {
        let mut out = Vec::new();
        self.allreduce_with_into(scheme, data, &mut out, cfg)?;
        Ok(out)
    }

    /// [`SecureComm::allreduce_with`] writing into a caller-provided
    /// vector. `out` is cleared and filled with the aggregate; its capacity
    /// is reused across calls, which makes the integer hot path free of
    /// heap allocation in steady state (the staging buffers come from the
    /// arena, the output from the caller). Under
    /// [`PeerDeadPolicy::ShrinkAndContinue`](super::cfg::PeerDeadPolicy)
    /// a dead member triggers membership reconfiguration and a re-run
    /// over the survivors (see [`super::membership`]).
    pub fn allreduce_with_into<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut Vec<S::Input>,
        cfg: EngineCfg,
    ) -> Result<(), EngineError> {
        self.with_shrink(cfg.retry, |sc| sc.allreduce_attempt(scheme, data, out, cfg))
    }

    /// One full attempt of the fused allreduce over the *current*
    /// membership. [`SecureComm::allreduce_with_into`] (the public
    /// wrapper in [`super::membership`]) re-runs this after a
    /// shrink-and-continue reconfiguration; `out` is cleared at entry so
    /// a re-run starts from a clean slate.
    pub(crate) fn allreduce_attempt<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut Vec<S::Input>,
        cfg: EngineCfg,
    ) -> Result<(), EngineError> {
        let block = match cfg.chunk {
            ChunkMode::Sync => data.len().max(1),
            ChunkMode::Blocked(b) | ChunkMode::Pipelined(b) => {
                assert!(b > 0, "block size must be positive");
                b
            }
        };
        // The span mirrors the legacy per-method instrumentation: the
        // Fig. 6 baseline (`Blocked`) intentionally ran unspanned.
        let _span = match cfg.chunk {
            ChunkMode::Pipelined(b) => Some(hear_telemetry::span!(
                "pipeline",
                elems = data.len(),
                block = b
            )),
            ChunkMode::Sync if cfg.verified => Some(hear_telemetry::span!(
                "secure_allreduce_verified",
                elems = data.len()
            )),
            ChunkMode::Sync => Some(hear_telemetry::span!(
                "secure_allreduce",
                elems = data.len()
            )),
            ChunkMode::Blocked(_) => None,
        };
        let homac = if cfg.verified {
            assert!(
                self.world() <= S::MAX_VERIFIED_WORLD,
                "{} digest verification is sound only up to {} ranks",
                S::NAME,
                S::MAX_VERIFIED_WORLD
            );
            Some(
                self.homac
                    .clone()
                    .expect("enable verification with with_homac()"),
            )
        } else {
            None
        };
        self.keys.advance();
        out.clear();
        if data.is_empty() {
            return Ok(());
        }
        self.submit_prefetch(scheme.noise_width(), data.len());
        if self.world() == 1 {
            // Nothing crosses the network: mask/unmask locally so every
            // algorithm (even Switch without a switch fabric) degenerates
            // to the identity, and verification has nothing to check.
            return self.run_local(scheme, data, out);
        }
        out.extend(data.iter().cloned());
        // Tags for the whole epoch are reserved up front so retries and
        // degraded re-runs stay inside this call's tag block: block `b`,
        // attempt `a` runs on `base + b·256 + a·8` on every rank.
        let nblocks = (data.len() as u64).div_ceil(block as u64);
        let base_tag = self.comm.reserve_coll_tags(nblocks);
        let mut algo = cfg.algo.unwrap_or(self.algo);
        if algo == ReduceAlgo::Switch && self.degraded {
            // A previous epoch lost the switch tree: stay on the host
            // ring instead of re-probing a dead fabric every call.
            algo = ReduceAlgo::Ring;
            hear_telemetry::incr(hear_telemetry::Metric::DegradedEpochs);
        }
        let mut ctl = RetryCtl::new(cfg.retry);
        match (cfg.chunk, homac) {
            (ChunkMode::Pipelined(_), None) => {
                self.run_plain_pipelined(scheme, data, out, block, &mut algo, base_tag, &mut ctl)
            }
            (ChunkMode::Pipelined(_), Some(h)) => self.run_verified_pipelined(
                scheme, data, out, block, &mut algo, base_tag, &mut ctl, &h,
            ),
            (_, None) => {
                self.run_plain_sync(scheme, data, out, block, &mut algo, base_tag, &mut ctl)
            }
            (_, Some(h)) => {
                self.run_verified_sync(scheme, data, out, block, &mut algo, base_tag, &mut ctl, &h)
            }
        }
    }

    /// One plain block, synchronously, with the attempt loop: mask →
    /// transport → unmask, retrying or degrading per the policy.
    /// Re-masking on a retry reproduces the identical ciphertext (same
    /// epoch, same offsets), so a resend is never a two-time pad.
    #[allow(clippy::too_many_arguments)]
    fn plain_block_sync<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut [S::Input],
        block: usize,
        offset: usize,
        block_idx: u64,
        algo: &mut ReduceAlgo,
        base_tag: u64,
        ctl: &mut RetryCtl,
        wire: &mut Vec<S::Wire>,
        dec: &mut Vec<S::Input>,
        seg: &mut Vec<S::Wire>,
    ) -> Result<(), EngineError> {
        let end = (offset + block).min(data.len());
        loop {
            scheme.mask_slice(&self.keys, offset as u64, &data[offset..end], wire)?;
            let tag = attempt_tag(base_tag, block_idx, ctl.attempt);
            let deadline = ctl.deadline();
            match self.try_transport_sync(tag, std::mem::take(wire), *algo, S::op, seg, deadline) {
                Ok(agg) => {
                    scheme.unmask_slice(&self.keys, offset as u64, &agg, dec);
                    out[offset..end].clone_from_slice(dec);
                    // The aggregate's buffer becomes the next attempt's or
                    // block's wire buffer.
                    *wire = agg;
                    return Ok(());
                }
                Err(e) => match ctl.on_error(EngineError::Comm(e)) {
                    Step::Retry => {}
                    Step::Degrade => {
                        self.note_degraded();
                        *algo = ReduceAlgo::Ring;
                    }
                    Step::Fail(err) => return Err(err),
                },
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_plain_sync<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut [S::Input],
        block: usize,
        algo: &mut ReduceAlgo,
        base_tag: u64,
        ctl: &mut RetryCtl,
    ) -> Result<(), EngineError> {
        let mut wire: Vec<S::Wire> = self.arena.take_vec();
        let mut dec: Vec<S::Input> = self.arena.take_vec();
        let mut seg: Vec<S::Wire> = self.arena.take_vec();
        let mut failed = None;
        let mut offset = 0usize;
        let mut block_idx = 0u64;
        while offset < data.len() {
            if let Err(e) = self.plain_block_sync(
                scheme, data, out, block, offset, block_idx, algo, base_tag, ctl, &mut wire,
                &mut dec, &mut seg,
            ) {
                failed = Some(e);
                break;
            }
            offset = (offset + block).min(data.len());
            block_idx += 1;
        }
        self.arena.put_vec(wire);
        self.arena.put_vec(dec);
        self.arena.put_vec(seg);
        failed.map_or(Ok(()), Err)
    }

    /// Complete one posted plain block: wait on the request, and on
    /// failure fall back to synchronous per-block recovery (which retries
    /// and/or degrades per the policy).
    #[allow(clippy::too_many_arguments)]
    fn drain_plain_block<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut [S::Input],
        block: usize,
        offset: usize,
        block_idx: u64,
        req: Request<Result<Vec<S::Wire>, CommError>>,
        algo: &mut ReduceAlgo,
        base_tag: u64,
        ctl: &mut RetryCtl,
        wire: &mut Vec<S::Wire>,
        dec: &mut Vec<S::Input>,
        seg: &mut Vec<S::Wire>,
    ) -> Result<(), EngineError> {
        let res = {
            let _w = hear_telemetry::span!("pipeline_wait", offset = offset);
            req.wait()
        };
        hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, -1);
        match res {
            Ok(agg) => {
                scheme.unmask_block(&self.keys, offset as u64, &agg, dec);
                out[offset..offset + dec.len()].clone_from_slice(dec);
                *wire = agg;
                Ok(())
            }
            Err(e) => {
                match ctl.on_error(EngineError::Comm(e)) {
                    Step::Retry => {}
                    Step::Degrade => {
                        self.note_degraded();
                        *algo = ReduceAlgo::Ring;
                    }
                    Step::Fail(err) => return Err(err),
                }
                self.plain_block_sync(
                    scheme, data, out, block, offset, block_idx, algo, base_tag, ctl, wire, dec,
                    seg,
                )
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_plain_pipelined<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut [S::Input],
        block: usize,
        algo: &mut ReduceAlgo,
        base_tag: u64,
        ctl: &mut RetryCtl,
    ) -> Result<(), EngineError> {
        #[allow(clippy::type_complexity)]
        let mut inflight: VecDeque<(usize, u64, Request<Result<Vec<S::Wire>, CommError>>)> =
            VecDeque::with_capacity(DEPTH);
        let mut wire: Vec<S::Wire> = self.arena.take_vec();
        let mut dec: Vec<S::Input> = self.arena.take_vec();
        let mut seg: Vec<S::Wire> = self.arena.take_vec();
        let mut failed = None;
        let mut offset = 0usize;
        let mut block_idx = 0u64;
        while offset < data.len() {
            let end = (offset + block).min(data.len());
            // An encode error aborts the call; already-posted blocks are
            // detached and complete in the background on every rank.
            if let Err(e) =
                scheme.mask_block(&self.keys, offset as u64, &data[offset..end], &mut wire)
            {
                failed = Some(EngineError::from(e));
                break;
            }
            hear_telemetry::incr(hear_telemetry::Metric::PipelineBlocks);
            hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, 1);
            let tag = attempt_tag(base_tag, block_idx, ctl.attempt);
            let deadline = ctl.deadline();
            inflight.push_back((
                offset,
                block_idx,
                self.try_transport_nb(tag, std::mem::take(&mut wire), *algo, S::op, deadline),
            ));
            if inflight.len() >= DEPTH {
                let (o, bi, req) = inflight.pop_front().expect("non-empty");
                if let Err(e) = self.drain_plain_block(
                    scheme, data, out, block, o, bi, req, algo, base_tag, ctl, &mut wire, &mut dec,
                    &mut seg,
                ) {
                    failed = Some(e);
                    break;
                }
            }
            offset = end;
            block_idx += 1;
        }
        if failed.is_none() {
            while let Some((o, bi, req)) = inflight.pop_front() {
                if let Err(e) = self.drain_plain_block(
                    scheme, data, out, block, o, bi, req, algo, base_tag, ctl, &mut wire, &mut dec,
                    &mut seg,
                ) {
                    failed = Some(e);
                    break;
                }
            }
        }
        self.arena.put_vec(wire);
        self.arena.put_vec(dec);
        self.arena.put_vec(seg);
        failed.map_or(Ok(()), Err)
    }

    /// One verified block, synchronously, with the attempt loop: seal →
    /// transport → open. A verification failure is retryable — the
    /// per-block §5.5 digest already localized the damage to this block,
    /// so the resend retransmits exactly the failing packets (re-sealed to
    /// the identical ciphertext) and nothing else.
    #[allow(clippy::too_many_arguments)]
    fn verified_block_sync<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        homac: &Homac,
        data: &[S::Input],
        out: &mut [S::Input],
        block: usize,
        offset: usize,
        block_idx: u64,
        algo: &mut ReduceAlgo,
        base_tag: u64,
        ctl: &mut RetryCtl,
        vs: &mut VerifyScratch<S>,
        seg: &mut Vec<Packet<S::Wire>>,
    ) -> Result<(), EngineError> {
        let world = self.world();
        let end = (offset + block).min(data.len());
        loop {
            seal_block(scheme, homac, &self.keys, offset, &data[offset..end], vs)?;
            let tag = attempt_tag(base_tag, block_idx, ctl.attempt);
            let deadline = ctl.deadline();
            let step = match self.try_transport_sync(
                tag,
                std::mem::take(&mut vs.packets),
                *algo,
                packet_op::<S>,
                seg,
                deadline,
            ) {
                Ok(agg) => match open_block(scheme, homac, &self.keys, world, offset, &agg, vs) {
                    Ok(()) => {
                        out[offset..end].clone_from_slice(&vs.dec);
                        // The aggregate becomes the next block's packet
                        // staging.
                        vs.packets = agg;
                        return Ok(());
                    }
                    Err(e) => ctl.on_error(e),
                },
                Err(e) => ctl.on_error(EngineError::Comm(e)),
            };
            match step {
                Step::Retry => {}
                Step::Degrade => {
                    self.note_degraded();
                    *algo = ReduceAlgo::Ring;
                }
                Step::Fail(err) => return Err(err),
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_verified_sync<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut [S::Input],
        block: usize,
        algo: &mut ReduceAlgo,
        base_tag: u64,
        ctl: &mut RetryCtl,
        homac: &Homac,
    ) -> Result<(), EngineError> {
        let mut vs = VerifyScratch::<S>::lease(&mut self.arena);
        let mut seg: Vec<Packet<S::Wire>> = self.arena.take_vec();
        let mut failed = None;
        let mut offset = 0usize;
        let mut block_idx = 0u64;
        while offset < data.len() {
            if let Err(e) = self.verified_block_sync(
                scheme, homac, data, out, block, offset, block_idx, algo, base_tag, ctl, &mut vs,
                &mut seg,
            ) {
                failed = Some(e);
                break;
            }
            offset = (offset + block).min(data.len());
            block_idx += 1;
        }
        vs.restore(&mut self.arena);
        self.arena.put_vec(seg);
        failed.map_or(Ok(()), Err)
    }

    /// Complete one posted verified block: wait, open, and on either a
    /// transport error or a verification failure fall back to synchronous
    /// per-block recovery.
    #[allow(clippy::too_many_arguments)]
    fn drain_verified_block<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        homac: &Homac,
        data: &[S::Input],
        out: &mut [S::Input],
        block: usize,
        offset: usize,
        block_idx: u64,
        req: Request<Result<Vec<Packet<S::Wire>>, CommError>>,
        algo: &mut ReduceAlgo,
        base_tag: u64,
        ctl: &mut RetryCtl,
        vs: &mut VerifyScratch<S>,
        seg: &mut Vec<Packet<S::Wire>>,
    ) -> Result<(), EngineError> {
        let world = self.world();
        let res = {
            let _w = hear_telemetry::span!("pipeline_wait", offset = offset);
            req.wait()
        };
        hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, -1);
        let step = match res {
            Ok(agg) => match open_block(scheme, homac, &self.keys, world, offset, &agg, vs) {
                Ok(()) => {
                    out[offset..offset + vs.dec.len()].clone_from_slice(&vs.dec);
                    vs.packets = agg;
                    return Ok(());
                }
                Err(e) => ctl.on_error(e),
            },
            Err(e) => ctl.on_error(EngineError::Comm(e)),
        };
        match step {
            Step::Retry => {}
            Step::Degrade => {
                self.note_degraded();
                *algo = ReduceAlgo::Ring;
            }
            Step::Fail(err) => return Err(err),
        }
        self.verified_block_sync(
            scheme, homac, data, out, block, offset, block_idx, algo, base_tag, ctl, vs, seg,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn run_verified_pipelined<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut [S::Input],
        block: usize,
        algo: &mut ReduceAlgo,
        base_tag: u64,
        ctl: &mut RetryCtl,
        homac: &Homac,
    ) -> Result<(), EngineError> {
        #[allow(clippy::type_complexity)]
        let mut inflight: VecDeque<(
            usize,
            u64,
            Request<Result<Vec<Packet<S::Wire>>, CommError>>,
        )> = VecDeque::with_capacity(DEPTH);
        let mut vs = VerifyScratch::<S>::lease(&mut self.arena);
        let mut seg: Vec<Packet<S::Wire>> = self.arena.take_vec();
        let mut failed = None;
        let mut offset = 0usize;
        let mut block_idx = 0u64;
        while offset < data.len() {
            let end = (offset + block).min(data.len());
            if let Err(e) = seal_block(
                scheme,
                homac,
                &self.keys,
                offset,
                &data[offset..end],
                &mut vs,
            ) {
                failed = Some(e);
                break;
            }
            hear_telemetry::incr(hear_telemetry::Metric::PipelineBlocks);
            hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, 1);
            let tag = attempt_tag(base_tag, block_idx, ctl.attempt);
            let deadline = ctl.deadline();
            inflight.push_back((
                offset,
                block_idx,
                self.try_transport_nb(
                    tag,
                    std::mem::take(&mut vs.packets),
                    *algo,
                    packet_op::<S>,
                    deadline,
                ),
            ));
            if inflight.len() >= DEPTH {
                let (o, bi, req) = inflight.pop_front().expect("non-empty");
                if let Err(e) = self.drain_verified_block(
                    scheme, homac, data, out, block, o, bi, req, algo, base_tag, ctl, &mut vs,
                    &mut seg,
                ) {
                    failed = Some(e);
                    break;
                }
            }
            offset = end;
            block_idx += 1;
        }
        if failed.is_none() {
            while let Some((o, bi, req)) = inflight.pop_front() {
                if let Err(e) = self.drain_verified_block(
                    scheme, homac, data, out, block, o, bi, req, algo, base_tag, ctl, &mut vs,
                    &mut seg,
                ) {
                    failed = Some(e);
                    break;
                }
            }
        }
        vs.restore(&mut self.arena);
        self.arena.put_vec(seg);
        failed.map_or(Ok(()), Err)
    }
}
