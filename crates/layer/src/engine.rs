//! The single allreduce engine.
//!
//! Every public `allreduce_*` method on [`SecureComm`] is a thin shim over
//! [`SecureComm::allreduce_with`], which composes four orthogonal choices:
//!
//! * **cipher** — any [`Scheme`] (Table 2's six rows plus fixed point),
//! * **algorithm** — [`ReduceAlgo`]: recursive doubling, ring, or the
//!   in-network switch tree,
//! * **chunking** — [`ChunkMode`]: one synchronous block, strictly
//!   sequential blocks, or the depth-2 pipeline of paper §6 / Fig. 6,
//! * **integrity** — optional HoMAC verification (§5.5) over a digest
//!   side-channel, uniform across all schemes.
//!
//! Cells that previously required a hand-rolled method — e.g. a *verified
//! pipelined float sum on a switch tree* — are now just an [`EngineCfg`].
//!
//! ## Steady-state memory behavior
//!
//! Every staging vector the engine needs — wire ciphertexts, decrypted
//! blocks, digest lanes, HoMAC tags, verified packets, ring segments — is
//! leased from the per-communicator [`ScratchArena`] and returned after
//! the call, and the aggregate buffer coming back from the transport is
//! recycled as the next block's wire buffer. Combined with the callee-
//! provided output of [`SecureComm::allreduce_with_into`], the integer
//! hot path performs **zero heap allocation** after warmup.
//!
//! ## Keystream prefetch
//!
//! Right after the per-call key advance, the engine plans the *next*
//! epoch's noise streams ([`hear_core::CommKeys::peek_next_epoch`] makes
//! the target epoch visible without advancing) and hands the plan to the
//! [`crate::prefetch::Prefetcher`] worker, which generates the PRF blocks
//! during this call's communication phase. The integer schemes then mask
//! the next call from cache; any misprediction (different length, scheme
//! width, or an extra advance) is a plain cache miss and regenerates
//! inline. Streams are planned only for schemes with a fixed noise lane
//! width ([`Scheme::noise_width`]); the verified path's digest streams
//! are deliberately left to inline generation — they are four words per
//! element at disjoint PRF indices and would crowd the cache.
//!
//! ## Verified transport
//!
//! Verification must work for wire formats (like [`hear_core::Hfp`]) whose
//! reduction is not a ring addition, so it does not tag the payload cipher
//! directly. Instead each element carries a *digest*: up to four `u64`
//! summation lanes of the plaintext (defined per scheme, exact for integer
//! and fixed-point data, quantized within the Table 2 lossiness for
//! floats). The lanes are encrypted under the lossless [`IntSum`] cipher at
//! PRF indices offset by [`DIGEST_BASE`] — disjoint from every payload
//! index — then HoMAC-tagged. The network reduces `(c, d, σ)` packets
//! component-wise; on receipt the engine verifies the tags (any tampering
//! with `d` or `σ` is caught by the MAC), decrypts the lane sums, and
//! checks the decrypted payload against them (any tampering with `c` is
//! caught by the digest). Zero-length inputs and single-rank communicators
//! short-circuit uniformly before any transport.

use crate::arena::ScratchArena;
use crate::prefetch::{PrefetchJob, MAX_PREFETCH_BLOCKS, MAX_STREAMS};
use crate::secure::{ReduceAlgo, SecureComm, VerificationError};
use hear_core::{CommKeys, Homac, IntSum, Scheme, Scratch, StreamPlan, DIGEST_BASE, DIGEST_LANES};
use hear_mpi::{CommError, Request, ATTEMPT_TAG_STRIDE, COLL_BLOCK_TAG_STRIDE, MAX_TAG_ATTEMPTS};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// How the engine chunks the payload across collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkMode {
    /// One blocking collective over the whole vector.
    #[default]
    Sync,
    /// Fixed-size blocks, strictly one after another (Fig. 6's "Naïve
    /// (sync)" baseline).
    Blocked(usize),
    /// Fixed-size blocks with two collectives in flight, overlapping
    /// encrypt(n+1) / decrypt(n−1) with the reduction of block n (§6).
    Pipelined(usize),
}

/// How the engine reacts to communication and verification failures.
///
/// Defaults reproduce the legacy behavior: one attempt, no deadline, but
/// graceful INC→host degradation stays on (it only triggers when the
/// switch tree is actually unreachable, which a healthy run never sees).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per block (1 = no retries). Timeouts and
    /// verification failures consume retries; `SwitchDown` degradation
    /// does not.
    pub max_attempts: u32,
    /// Sleep before the first retry; doubled after each one.
    pub backoff: Duration,
    /// Deadline applied to each attempt's collective; `None` waits
    /// forever (legacy blocking semantics).
    pub attempt_timeout: Option<Duration>,
    /// Fall back to the host ring when the INC switch tree reports
    /// `SwitchDown`, instead of failing the call.
    pub degrade_on_switch_down: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
            attempt_timeout: None,
            degrade_on_switch_down: true,
        }
    }
}

impl RetryPolicy {
    /// `retries` extra attempts after the first (so `retries(2)` allows
    /// three attempts total).
    pub fn retries(retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1 + retries,
            ..RetryPolicy::default()
        }
    }

    /// Initial backoff before the first retry (doubled per retry).
    pub fn with_backoff(mut self, backoff: Duration) -> RetryPolicy {
        self.backoff = backoff;
        self
    }

    /// Bound each attempt's collective by a deadline.
    pub fn with_attempt_timeout(mut self, timeout: Duration) -> RetryPolicy {
        self.attempt_timeout = Some(timeout);
        self
    }

    /// Fail the call on `SwitchDown` instead of degrading to the ring.
    pub fn no_degrade(mut self) -> RetryPolicy {
        self.degrade_on_switch_down = false;
        self
    }
}

/// Full configuration of one engine call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineCfg {
    pub chunk: ChunkMode,
    /// Attach the HoMAC-authenticated digest side-channel (§5.5).
    pub verified: bool,
    /// Reduction algorithm override; `None` uses the communicator's
    /// [`SecureComm::with_algo`] setting.
    pub algo: Option<ReduceAlgo>,
    /// Failure handling: bounded retries, per-attempt deadlines, and
    /// INC→host degradation.
    pub retry: RetryPolicy,
}

impl EngineCfg {
    /// One blocking collective (the default).
    pub fn sync() -> EngineCfg {
        EngineCfg::default()
    }

    /// Sequential blocks of `block_elems` elements.
    pub fn blocked(block_elems: usize) -> EngineCfg {
        EngineCfg {
            chunk: ChunkMode::Blocked(block_elems),
            ..EngineCfg::default()
        }
    }

    /// Pipelined blocks of `block_elems` elements.
    pub fn pipelined(block_elems: usize) -> EngineCfg {
        EngineCfg {
            chunk: ChunkMode::Pipelined(block_elems),
            ..EngineCfg::default()
        }
    }

    /// Enable HoMAC result verification (requires
    /// [`SecureComm::with_homac`]).
    pub fn verified(mut self) -> EngineCfg {
        self.verified = true;
        self
    }

    /// Override the reduction algorithm for this call only.
    pub fn with_algo(mut self, algo: ReduceAlgo) -> EngineCfg {
        self.algo = Some(algo);
        self
    }

    /// Attach a failure-handling policy to this call.
    pub fn with_retry(mut self, retry: RetryPolicy) -> EngineCfg {
        self.retry = retry;
        self
    }
}

/// Why an engine call failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// Float encoding rejected the input (NaN/Inf/overflow).
    Hfp(hear_core::HfpError),
    /// HoMAC or digest verification rejected the aggregate (and the
    /// retry budget, if any, is exhausted).
    Verification(VerificationError),
    /// The transport failed (timeout, dead peer, downed switch) beyond
    /// what the [`RetryPolicy`] could absorb.
    Comm(CommError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Hfp(e) => write!(f, "{e}"),
            EngineError::Verification(e) => write!(f, "{e}"),
            EngineError::Comm(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<hear_core::HfpError> for EngineError {
    fn from(e: hear_core::HfpError) -> Self {
        EngineError::Hfp(e)
    }
}

impl From<VerificationError> for EngineError {
    fn from(e: VerificationError) -> Self {
        EngineError::Verification(e)
    }
}

impl From<CommError> for EngineError {
    fn from(e: CommError) -> Self {
        EngineError::Comm(e)
    }
}

impl EngineError {
    /// Unwrap into the float-encoding error. Panics on any other error —
    /// use only on plain (non-verified) calls over a healthy fabric,
    /// which can fail in no other way.
    pub fn into_hfp(self) -> hear_core::HfpError {
        match self {
            EngineError::Hfp(e) => e,
            EngineError::Verification(_) => {
                unreachable!("plain engine calls cannot fail verification")
            }
            EngineError::Comm(e) => {
                panic!("allreduce transport failed: {e}")
            }
        }
    }
}

/// Mutable retry state for one engine call: the call-wide attempt counter
/// (which drives tag selection so a retry can never match a failed
/// attempt's stale wires), the remaining retry budget, and the growing
/// backoff.
struct RetryCtl {
    policy: RetryPolicy,
    /// Attempts consumed call-wide (monotonic across blocks, retries and
    /// degradations); attempt `a` of block `b` runs on tag
    /// `base + b·COLL_BLOCK_TAG_STRIDE + a·ATTEMPT_TAG_STRIDE`.
    attempt: u64,
    retries_left: u32,
    backoff: Duration,
}

/// What the retry controller decided after a block-level failure.
enum Step {
    /// Re-run the block on the same algorithm, next attempt tag.
    Retry,
    /// Switch the rest of the call to the host ring, next attempt tag.
    Degrade,
    /// Surface the error.
    Fail(EngineError),
}

impl RetryCtl {
    fn new(policy: RetryPolicy) -> RetryCtl {
        RetryCtl {
            policy,
            attempt: 0,
            retries_left: policy.max_attempts.saturating_sub(1),
            backoff: policy.backoff,
        }
    }

    /// Deadline for the attempt about to start.
    fn deadline(&self) -> Option<Instant> {
        self.policy.attempt_timeout.map(|t| Instant::now() + t)
    }

    /// Advance to the next attempt's tag slot; errors when the per-call
    /// tag space (MAX_TAG_ATTEMPTS slots) is used up.
    fn bump(&mut self) -> Result<(), ()> {
        self.attempt += 1;
        if self.attempt >= MAX_TAG_ATTEMPTS {
            Err(())
        } else {
            Ok(())
        }
    }

    /// Decide what a block-level failure means under the policy.
    /// Timeouts and verification failures are retryable (a resend on the
    /// per-block §5.5 digest failure IS the packet localization: only the
    /// failing block travels again); `SwitchDown` degrades without
    /// consuming a retry; everything else fails.
    fn on_error(&mut self, e: EngineError) -> Step {
        let retryable = match &e {
            // Degrade even when the call has already moved off the switch:
            // a pipelined call posts several blocks on the INC path before
            // the first failure drains, and those stale posts still come
            // back as `SwitchDown` after the call fell back to the ring.
            EngineError::Comm(CommError::SwitchDown { .. })
                if self.policy.degrade_on_switch_down =>
            {
                return if self.bump().is_ok() {
                    Step::Degrade
                } else {
                    Step::Fail(e)
                };
            }
            EngineError::Comm(c) => c.is_retryable(),
            EngineError::Verification(_) => true,
            EngineError::Hfp(_) => false,
        };
        if !retryable || self.retries_left == 0 || self.bump().is_err() {
            return Step::Fail(e);
        }
        self.retries_left -= 1;
        hear_telemetry::incr(hear_telemetry::Metric::RetriesTotal);
        if !self.backoff.is_zero() {
            std::thread::sleep(self.backoff);
            self.backoff = self.backoff.saturating_mul(2);
        }
        Step::Retry
    }
}

/// Wire tag for one attempt of one block.
#[inline]
fn attempt_tag(base: u64, block_idx: u64, attempt: u64) -> u64 {
    base + block_idx * COLL_BLOCK_TAG_STRIDE + attempt * ATTEMPT_TAG_STRIDE
}

/// What the network reduces in verified mode: the payload ciphertext plus
/// the encrypted digest lanes and their HoMAC tags (§5.5's "(σ, c)" pair,
/// widened with the digest channel).
#[derive(Debug, Clone)]
pub(crate) struct Packet<W> {
    pub(crate) c: W,
    pub(crate) d: [u64; DIGEST_LANES],
    pub(crate) s: [u64; DIGEST_LANES],
}

/// The combiner for [`Packet`] streams. A non-capturing generic `fn`, so
/// every transport — including the key-less switch service threads — can
/// carry it as a plain function pointer.
fn packet_op<S: Scheme>(a: &Packet<S::Wire>, b: &Packet<S::Wire>) -> Packet<S::Wire> {
    let mut d = [0u64; DIGEST_LANES];
    let mut s = [0u64; DIGEST_LANES];
    for i in 0..DIGEST_LANES {
        d[i] = a.d[i].wrapping_add(b.d[i]);
        s[i] = Homac::combine(a.s[i], b.s[i]);
    }
    Packet {
        c: S::op(&a.c, &b.c),
        d,
        s,
    }
}

/// Two blocks in flight overlap encrypt(n+1) and decrypt(n−1) with the
/// reduction of block n.
const DEPTH: usize = 2;

/// PRF index of the first digest lane of the block starting at `offset`.
#[inline]
fn digest_first(offset: usize) -> u64 {
    DIGEST_BASE + offset as u64 * DIGEST_LANES as u64
}

/// The verified path's staging set, leased from the [`ScratchArena`] for
/// one call: wire ciphertexts, the decrypted block, digest lanes and tags
/// (seal side), aggregate lane/tag splits (open side), and the packet
/// vector that shuttles to and from the transport.
struct VerifyScratch<S: Scheme + 'static> {
    wire: Vec<S::Wire>,
    dec: Vec<S::Input>,
    dlanes: Vec<u64>,
    sigmas: Vec<u64>,
    d_agg: Vec<u64>,
    s_agg: Vec<u64>,
    packets: Vec<Packet<S::Wire>>,
    dscratch: Scratch<u64>,
}

impl<S: Scheme + 'static> VerifyScratch<S> {
    fn lease(arena: &mut ScratchArena) -> Self {
        VerifyScratch {
            wire: arena.take_vec(),
            dec: arena.take_vec(),
            dlanes: arena.take_vec(),
            sigmas: arena.take_vec(),
            d_agg: arena.take_vec(),
            s_agg: arena.take_vec(),
            packets: arena.take_vec(),
            dscratch: Scratch::default(),
        }
    }

    fn restore(self, arena: &mut ScratchArena) {
        arena.put_vec(self.wire);
        arena.put_vec(self.dec);
        arena.put_vec(self.dlanes);
        arena.put_vec(self.sigmas);
        arena.put_vec(self.d_agg);
        arena.put_vec(self.s_agg);
        arena.put_vec(self.packets);
    }
}

/// Mask one block and wrap it into verified-transport packets (left in
/// `vs.packets`).
fn seal_block<S: Scheme + 'static>(
    scheme: &mut S,
    homac: &Homac,
    keys: &CommKeys,
    offset: usize,
    input: &[S::Input],
    vs: &mut VerifyScratch<S>,
) -> Result<(), EngineError> {
    scheme.mask_block(keys, offset as u64, input, &mut vs.wire)?;
    vs.dlanes.clear();
    let mut lanes = [0u64; DIGEST_LANES];
    for x in input {
        scheme.digest(x, &mut lanes);
        vs.dlanes.extend_from_slice(&lanes);
    }
    let first_d = digest_first(offset);
    IntSum::encrypt_in_place(keys, first_d, &mut vs.dlanes, &mut vs.dscratch);
    homac.tag_into(keys, first_d, &vs.dlanes, &mut vs.sigmas);
    vs.packets.clear();
    vs.packets.extend(
        vs.wire
            .drain(..)
            .zip(
                vs.dlanes
                    .chunks_exact(DIGEST_LANES)
                    .zip(vs.sigmas.chunks_exact(DIGEST_LANES)),
            )
            .map(|(c, (d, s))| Packet {
                c,
                d: d.try_into().expect("chunks_exact yields DIGEST_LANES"),
                s: s.try_into().expect("chunks_exact yields DIGEST_LANES"),
            }),
    );
    Ok(())
}

/// Verify, decrypt and digest-check one aggregated block into `vs.dec`.
fn open_block<S: Scheme + 'static>(
    scheme: &mut S,
    homac: &Homac,
    keys: &CommKeys,
    world: usize,
    offset: usize,
    agg: &[Packet<S::Wire>],
    vs: &mut VerifyScratch<S>,
) -> Result<(), EngineError> {
    vs.wire.clear();
    vs.d_agg.clear();
    vs.s_agg.clear();
    for p in agg {
        vs.wire.push(p.c.clone());
        vs.d_agg.extend_from_slice(&p.d);
        vs.s_agg.extend_from_slice(&p.s);
    }
    let first_d = digest_first(offset);
    if !homac.verify(keys, first_d, &vs.d_agg, &vs.s_agg) {
        return Err(EngineError::Verification(VerificationError));
    }
    IntSum::decrypt_in_place(keys, first_d, &mut vs.d_agg, &mut vs.dscratch);
    scheme.unmask_block(keys, offset as u64, &vs.wire, &mut vs.dec);
    for (i, r) in vs.dec.iter().enumerate() {
        let lanes: [u64; DIGEST_LANES] = vs.d_agg[i * DIGEST_LANES..(i + 1) * DIGEST_LANES]
            .try_into()
            .expect("lane slice has DIGEST_LANES words");
        if !scheme.digest_check(r, &lanes, world) {
            return Err(EngineError::Verification(VerificationError));
        }
    }
    Ok(())
}

impl SecureComm {
    /// The generic secured allreduce: any [`Scheme`] × any [`ReduceAlgo`] ×
    /// any [`ChunkMode`] × optional verification. Every legacy
    /// `allreduce_*` method is a shim over this, and
    /// [`SecureComm::pmpi_allreduce`] routes runtime-typed calls here.
    pub fn allreduce_with<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        cfg: EngineCfg,
    ) -> Result<Vec<S::Input>, EngineError> {
        let mut out = Vec::new();
        self.allreduce_with_into(scheme, data, &mut out, cfg)?;
        Ok(out)
    }

    /// [`SecureComm::allreduce_with`] writing into a caller-provided
    /// vector. `out` is cleared and filled with the aggregate; its capacity
    /// is reused across calls, which makes the integer hot path free of
    /// heap allocation in steady state (the staging buffers come from the
    /// arena, the output from the caller).
    pub fn allreduce_with_into<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut Vec<S::Input>,
        cfg: EngineCfg,
    ) -> Result<(), EngineError> {
        let block = match cfg.chunk {
            ChunkMode::Sync => data.len().max(1),
            ChunkMode::Blocked(b) | ChunkMode::Pipelined(b) => {
                assert!(b > 0, "block size must be positive");
                b
            }
        };
        // The span mirrors the legacy per-method instrumentation: the
        // Fig. 6 baseline (`Blocked`) intentionally ran unspanned.
        let _span = match cfg.chunk {
            ChunkMode::Pipelined(b) => Some(hear_telemetry::span!(
                "pipeline",
                elems = data.len(),
                block = b
            )),
            ChunkMode::Sync if cfg.verified => Some(hear_telemetry::span!(
                "secure_allreduce_verified",
                elems = data.len()
            )),
            ChunkMode::Sync => Some(hear_telemetry::span!(
                "secure_allreduce",
                elems = data.len()
            )),
            ChunkMode::Blocked(_) => None,
        };
        let homac = if cfg.verified {
            assert!(
                self.world() <= S::MAX_VERIFIED_WORLD,
                "{} digest verification is sound only up to {} ranks",
                S::NAME,
                S::MAX_VERIFIED_WORLD
            );
            Some(
                self.homac
                    .clone()
                    .expect("enable verification with with_homac()"),
            )
        } else {
            None
        };
        self.keys.advance();
        out.clear();
        if data.is_empty() {
            return Ok(());
        }
        self.submit_prefetch(scheme.noise_width(), data.len());
        if self.world() == 1 {
            // Nothing crosses the network: mask/unmask locally so every
            // algorithm (even Switch without a switch fabric) degenerates
            // to the identity, and verification has nothing to check.
            return self.run_local(scheme, data, out);
        }
        out.extend(data.iter().cloned());
        // Tags for the whole epoch are reserved up front so retries and
        // degraded re-runs stay inside this call's tag block: block `b`,
        // attempt `a` runs on `base + b·256 + a·8` on every rank.
        let nblocks = (data.len() as u64).div_ceil(block as u64);
        let base_tag = self.comm.reserve_coll_tags(nblocks);
        let mut algo = cfg.algo.unwrap_or(self.algo);
        if algo == ReduceAlgo::Switch && self.degraded {
            // A previous epoch lost the switch tree: stay on the host
            // ring instead of re-probing a dead fabric every call.
            algo = ReduceAlgo::Ring;
            hear_telemetry::incr(hear_telemetry::Metric::DegradedEpochs);
        }
        let mut ctl = RetryCtl::new(cfg.retry);
        match (cfg.chunk, homac) {
            (ChunkMode::Pipelined(_), None) => {
                self.run_plain_pipelined(scheme, data, out, block, &mut algo, base_tag, &mut ctl)
            }
            (ChunkMode::Pipelined(_), Some(h)) => self.run_verified_pipelined(
                scheme, data, out, block, &mut algo, base_tag, &mut ctl, &h,
            ),
            (_, None) => {
                self.run_plain_sync(scheme, data, out, block, &mut algo, base_tag, &mut ctl)
            }
            (_, Some(h)) => {
                self.run_verified_sync(scheme, data, out, block, &mut algo, base_tag, &mut ctl, &h)
            }
        }
    }

    /// Record the INC→host fallback: the rest of this epoch (and every
    /// later one) runs on the ring, and the degradation is counted once
    /// per affected epoch.
    fn note_degraded(&mut self) {
        self.degraded = true;
        hear_telemetry::incr(hear_telemetry::Metric::DegradedEpochs);
    }

    /// Plan the next epoch's noise streams for the prefetch worker. The
    /// plan predicts that the next call reuses this call's scheme lane
    /// width and element count — a misprediction is a cache miss, never an
    /// error. Schemes without a fixed noise width (floats, products) skip
    /// planning entirely.
    fn submit_prefetch(&mut self, noise_width: Option<usize>, elems: usize) {
        let (Some(w), Some(pf)) = (noise_width, self.prefetch.as_mut()) else {
            return;
        };
        let per = (16 / w).max(1) as u64;
        let nblocks = (elems as u64).div_ceil(per) as usize;
        let nblocks = nblocks.min(MAX_PREFETCH_BLOCKS);
        let epoch = self.keys.peek_next_epoch();
        let (own, next, zero) = self.keys.bases_at(epoch);
        let mut streams: [Option<StreamPlan>; MAX_STREAMS] = [None; MAX_STREAMS];
        let mut n = 0usize;
        for base in [own, next, zero] {
            // Bases coincide on small rings (e.g. world ≤ 2): plan each
            // distinct stream once.
            if streams[..n].iter().flatten().any(|p| p.base == base) {
                continue;
            }
            streams[n] = Some(StreamPlan {
                base,
                first_block: 0,
                nblocks,
            });
            n += 1;
        }
        pf.submit(PrefetchJob { epoch, streams });
    }

    /// Single-rank path: the aggregate of one contribution is itself
    /// (masked and unmasked so encode/decode lossiness still applies).
    fn run_local<S: Scheme>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut Vec<S::Input>,
    ) -> Result<(), EngineError> {
        let mut wire: Vec<S::Wire> = self.arena.take_vec();
        let sealed = scheme.mask_slice(&self.keys, 0, data, &mut wire);
        let result = match sealed {
            Ok(()) => {
                scheme.unmask_slice(&self.keys, 0, &wire, out);
                Ok(())
            }
            Err(e) => Err(e.into()),
        };
        self.arena.put_vec(wire);
        result
    }

    /// The algorithm-selected blocking transport on an explicit attempt
    /// tag and deadline. `seg` is the ring algorithm's hop staging buffer
    /// (arena-leased by the caller); the other algorithms ignore it.
    fn try_transport_sync<T, F>(
        &self,
        tag: u64,
        data: Vec<T>,
        algo: ReduceAlgo,
        op: F,
        seg: &mut Vec<T>,
        deadline: Option<Instant>,
    ) -> Result<Vec<T>, CommError>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T + Send + Sync + Clone + 'static,
    {
        match algo {
            ReduceAlgo::RecursiveDoubling => self
                .comm
                .try_allreduce_owned_tagged(tag, data, op, deadline),
            ReduceAlgo::Ring => self
                .comm
                .try_allreduce_ring_owned_tagged_with_seg(tag, data, op, seg, deadline),
            ReduceAlgo::Switch => self.comm.try_allreduce_inc_tagged(tag, data, op, deadline),
        }
    }

    /// The algorithm-selected nonblocking transport on an explicit attempt
    /// tag and deadline.
    fn try_transport_nb<T, F>(
        &self,
        tag: u64,
        data: Vec<T>,
        algo: ReduceAlgo,
        op: F,
        deadline: Option<Instant>,
    ) -> Request<Result<Vec<T>, CommError>>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T + Send + Sync + Clone + 'static,
    {
        match algo {
            ReduceAlgo::RecursiveDoubling => {
                self.comm.try_iallreduce_tagged(tag, data, op, deadline)
            }
            ReduceAlgo::Ring => self
                .comm
                .try_iallreduce_ring_tagged(tag, data, op, deadline),
            ReduceAlgo::Switch => self.comm.try_iallreduce_inc_tagged(tag, data, op, deadline),
        }
    }

    /// One plain block, synchronously, with the attempt loop: mask →
    /// transport → unmask, retrying or degrading per the policy.
    /// Re-masking on a retry reproduces the identical ciphertext (same
    /// epoch, same offsets), so a resend is never a two-time pad.
    #[allow(clippy::too_many_arguments)]
    fn plain_block_sync<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut [S::Input],
        block: usize,
        offset: usize,
        block_idx: u64,
        algo: &mut ReduceAlgo,
        base_tag: u64,
        ctl: &mut RetryCtl,
        wire: &mut Vec<S::Wire>,
        dec: &mut Vec<S::Input>,
        seg: &mut Vec<S::Wire>,
    ) -> Result<(), EngineError> {
        let end = (offset + block).min(data.len());
        loop {
            scheme.mask_slice(&self.keys, offset as u64, &data[offset..end], wire)?;
            let tag = attempt_tag(base_tag, block_idx, ctl.attempt);
            let deadline = ctl.deadline();
            match self.try_transport_sync(tag, std::mem::take(wire), *algo, S::op, seg, deadline) {
                Ok(agg) => {
                    scheme.unmask_slice(&self.keys, offset as u64, &agg, dec);
                    out[offset..end].clone_from_slice(dec);
                    // The aggregate's buffer becomes the next attempt's or
                    // block's wire buffer.
                    *wire = agg;
                    return Ok(());
                }
                Err(e) => match ctl.on_error(EngineError::Comm(e)) {
                    Step::Retry => {}
                    Step::Degrade => {
                        self.note_degraded();
                        *algo = ReduceAlgo::Ring;
                    }
                    Step::Fail(err) => return Err(err),
                },
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_plain_sync<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut [S::Input],
        block: usize,
        algo: &mut ReduceAlgo,
        base_tag: u64,
        ctl: &mut RetryCtl,
    ) -> Result<(), EngineError> {
        let mut wire: Vec<S::Wire> = self.arena.take_vec();
        let mut dec: Vec<S::Input> = self.arena.take_vec();
        let mut seg: Vec<S::Wire> = self.arena.take_vec();
        let mut failed = None;
        let mut offset = 0usize;
        let mut block_idx = 0u64;
        while offset < data.len() {
            if let Err(e) = self.plain_block_sync(
                scheme, data, out, block, offset, block_idx, algo, base_tag, ctl, &mut wire,
                &mut dec, &mut seg,
            ) {
                failed = Some(e);
                break;
            }
            offset = (offset + block).min(data.len());
            block_idx += 1;
        }
        self.arena.put_vec(wire);
        self.arena.put_vec(dec);
        self.arena.put_vec(seg);
        failed.map_or(Ok(()), Err)
    }

    /// Complete one posted plain block: wait on the request, and on
    /// failure fall back to synchronous per-block recovery (which retries
    /// and/or degrades per the policy).
    #[allow(clippy::too_many_arguments)]
    fn drain_plain_block<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut [S::Input],
        block: usize,
        offset: usize,
        block_idx: u64,
        req: Request<Result<Vec<S::Wire>, CommError>>,
        algo: &mut ReduceAlgo,
        base_tag: u64,
        ctl: &mut RetryCtl,
        wire: &mut Vec<S::Wire>,
        dec: &mut Vec<S::Input>,
        seg: &mut Vec<S::Wire>,
    ) -> Result<(), EngineError> {
        let res = {
            let _w = hear_telemetry::span!("pipeline_wait", offset = offset);
            req.wait()
        };
        hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, -1);
        match res {
            Ok(agg) => {
                scheme.unmask_block(&self.keys, offset as u64, &agg, dec);
                out[offset..offset + dec.len()].clone_from_slice(dec);
                *wire = agg;
                Ok(())
            }
            Err(e) => {
                match ctl.on_error(EngineError::Comm(e)) {
                    Step::Retry => {}
                    Step::Degrade => {
                        self.note_degraded();
                        *algo = ReduceAlgo::Ring;
                    }
                    Step::Fail(err) => return Err(err),
                }
                self.plain_block_sync(
                    scheme, data, out, block, offset, block_idx, algo, base_tag, ctl, wire, dec,
                    seg,
                )
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_plain_pipelined<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut [S::Input],
        block: usize,
        algo: &mut ReduceAlgo,
        base_tag: u64,
        ctl: &mut RetryCtl,
    ) -> Result<(), EngineError> {
        #[allow(clippy::type_complexity)]
        let mut inflight: VecDeque<(usize, u64, Request<Result<Vec<S::Wire>, CommError>>)> =
            VecDeque::with_capacity(DEPTH);
        let mut wire: Vec<S::Wire> = self.arena.take_vec();
        let mut dec: Vec<S::Input> = self.arena.take_vec();
        let mut seg: Vec<S::Wire> = self.arena.take_vec();
        let mut failed = None;
        let mut offset = 0usize;
        let mut block_idx = 0u64;
        while offset < data.len() {
            let end = (offset + block).min(data.len());
            // An encode error aborts the call; already-posted blocks are
            // detached and complete in the background on every rank.
            if let Err(e) =
                scheme.mask_block(&self.keys, offset as u64, &data[offset..end], &mut wire)
            {
                failed = Some(EngineError::from(e));
                break;
            }
            hear_telemetry::incr(hear_telemetry::Metric::PipelineBlocks);
            hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, 1);
            let tag = attempt_tag(base_tag, block_idx, ctl.attempt);
            let deadline = ctl.deadline();
            inflight.push_back((
                offset,
                block_idx,
                self.try_transport_nb(tag, std::mem::take(&mut wire), *algo, S::op, deadline),
            ));
            if inflight.len() >= DEPTH {
                let (o, bi, req) = inflight.pop_front().expect("non-empty");
                if let Err(e) = self.drain_plain_block(
                    scheme, data, out, block, o, bi, req, algo, base_tag, ctl, &mut wire, &mut dec,
                    &mut seg,
                ) {
                    failed = Some(e);
                    break;
                }
            }
            offset = end;
            block_idx += 1;
        }
        if failed.is_none() {
            while let Some((o, bi, req)) = inflight.pop_front() {
                if let Err(e) = self.drain_plain_block(
                    scheme, data, out, block, o, bi, req, algo, base_tag, ctl, &mut wire, &mut dec,
                    &mut seg,
                ) {
                    failed = Some(e);
                    break;
                }
            }
        }
        self.arena.put_vec(wire);
        self.arena.put_vec(dec);
        self.arena.put_vec(seg);
        failed.map_or(Ok(()), Err)
    }

    /// One verified block, synchronously, with the attempt loop: seal →
    /// transport → open. A verification failure is retryable — the
    /// per-block §5.5 digest already localized the damage to this block,
    /// so the resend retransmits exactly the failing packets (re-sealed to
    /// the identical ciphertext) and nothing else.
    #[allow(clippy::too_many_arguments)]
    fn verified_block_sync<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        homac: &Homac,
        data: &[S::Input],
        out: &mut [S::Input],
        block: usize,
        offset: usize,
        block_idx: u64,
        algo: &mut ReduceAlgo,
        base_tag: u64,
        ctl: &mut RetryCtl,
        vs: &mut VerifyScratch<S>,
        seg: &mut Vec<Packet<S::Wire>>,
    ) -> Result<(), EngineError> {
        let world = self.world();
        let end = (offset + block).min(data.len());
        loop {
            seal_block(scheme, homac, &self.keys, offset, &data[offset..end], vs)?;
            let tag = attempt_tag(base_tag, block_idx, ctl.attempt);
            let deadline = ctl.deadline();
            let step = match self.try_transport_sync(
                tag,
                std::mem::take(&mut vs.packets),
                *algo,
                packet_op::<S>,
                seg,
                deadline,
            ) {
                Ok(agg) => match open_block(scheme, homac, &self.keys, world, offset, &agg, vs) {
                    Ok(()) => {
                        out[offset..end].clone_from_slice(&vs.dec);
                        // The aggregate becomes the next block's packet
                        // staging.
                        vs.packets = agg;
                        return Ok(());
                    }
                    Err(e) => ctl.on_error(e),
                },
                Err(e) => ctl.on_error(EngineError::Comm(e)),
            };
            match step {
                Step::Retry => {}
                Step::Degrade => {
                    self.note_degraded();
                    *algo = ReduceAlgo::Ring;
                }
                Step::Fail(err) => return Err(err),
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_verified_sync<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut [S::Input],
        block: usize,
        algo: &mut ReduceAlgo,
        base_tag: u64,
        ctl: &mut RetryCtl,
        homac: &Homac,
    ) -> Result<(), EngineError> {
        let mut vs = VerifyScratch::<S>::lease(&mut self.arena);
        let mut seg: Vec<Packet<S::Wire>> = self.arena.take_vec();
        let mut failed = None;
        let mut offset = 0usize;
        let mut block_idx = 0u64;
        while offset < data.len() {
            if let Err(e) = self.verified_block_sync(
                scheme, homac, data, out, block, offset, block_idx, algo, base_tag, ctl, &mut vs,
                &mut seg,
            ) {
                failed = Some(e);
                break;
            }
            offset = (offset + block).min(data.len());
            block_idx += 1;
        }
        vs.restore(&mut self.arena);
        self.arena.put_vec(seg);
        failed.map_or(Ok(()), Err)
    }

    /// Complete one posted verified block: wait, open, and on either a
    /// transport error or a verification failure fall back to synchronous
    /// per-block recovery.
    #[allow(clippy::too_many_arguments)]
    fn drain_verified_block<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        homac: &Homac,
        data: &[S::Input],
        out: &mut [S::Input],
        block: usize,
        offset: usize,
        block_idx: u64,
        req: Request<Result<Vec<Packet<S::Wire>>, CommError>>,
        algo: &mut ReduceAlgo,
        base_tag: u64,
        ctl: &mut RetryCtl,
        vs: &mut VerifyScratch<S>,
        seg: &mut Vec<Packet<S::Wire>>,
    ) -> Result<(), EngineError> {
        let world = self.world();
        let res = {
            let _w = hear_telemetry::span!("pipeline_wait", offset = offset);
            req.wait()
        };
        hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, -1);
        let step = match res {
            Ok(agg) => match open_block(scheme, homac, &self.keys, world, offset, &agg, vs) {
                Ok(()) => {
                    out[offset..offset + vs.dec.len()].clone_from_slice(&vs.dec);
                    vs.packets = agg;
                    return Ok(());
                }
                Err(e) => ctl.on_error(e),
            },
            Err(e) => ctl.on_error(EngineError::Comm(e)),
        };
        match step {
            Step::Retry => {}
            Step::Degrade => {
                self.note_degraded();
                *algo = ReduceAlgo::Ring;
            }
            Step::Fail(err) => return Err(err),
        }
        self.verified_block_sync(
            scheme, homac, data, out, block, offset, block_idx, algo, base_tag, ctl, vs, seg,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn run_verified_pipelined<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        out: &mut [S::Input],
        block: usize,
        algo: &mut ReduceAlgo,
        base_tag: u64,
        ctl: &mut RetryCtl,
        homac: &Homac,
    ) -> Result<(), EngineError> {
        #[allow(clippy::type_complexity)]
        let mut inflight: VecDeque<(
            usize,
            u64,
            Request<Result<Vec<Packet<S::Wire>>, CommError>>,
        )> = VecDeque::with_capacity(DEPTH);
        let mut vs = VerifyScratch::<S>::lease(&mut self.arena);
        let mut seg: Vec<Packet<S::Wire>> = self.arena.take_vec();
        let mut failed = None;
        let mut offset = 0usize;
        let mut block_idx = 0u64;
        while offset < data.len() {
            let end = (offset + block).min(data.len());
            if let Err(e) = seal_block(
                scheme,
                homac,
                &self.keys,
                offset,
                &data[offset..end],
                &mut vs,
            ) {
                failed = Some(e);
                break;
            }
            hear_telemetry::incr(hear_telemetry::Metric::PipelineBlocks);
            hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, 1);
            let tag = attempt_tag(base_tag, block_idx, ctl.attempt);
            let deadline = ctl.deadline();
            inflight.push_back((
                offset,
                block_idx,
                self.try_transport_nb(
                    tag,
                    std::mem::take(&mut vs.packets),
                    *algo,
                    packet_op::<S>,
                    deadline,
                ),
            ));
            if inflight.len() >= DEPTH {
                let (o, bi, req) = inflight.pop_front().expect("non-empty");
                if let Err(e) = self.drain_verified_block(
                    scheme, homac, data, out, block, o, bi, req, algo, base_tag, ctl, &mut vs,
                    &mut seg,
                ) {
                    failed = Some(e);
                    break;
                }
            }
            offset = end;
            block_idx += 1;
        }
        if failed.is_none() {
            while let Some((o, bi, req)) = inflight.pop_front() {
                if let Err(e) = self.drain_verified_block(
                    scheme, homac, data, out, block, o, bi, req, algo, base_tag, ctl, &mut vs,
                    &mut seg,
                ) {
                    failed = Some(e);
                    break;
                }
            }
        }
        vs.restore(&mut self.arena);
        self.arena.put_vec(seg);
        failed.map_or(Ok(()), Err)
    }
}
