//! The single allreduce engine.
//!
//! Every public `allreduce_*` method on [`SecureComm`] is a thin shim over
//! [`SecureComm::allreduce_with`], which composes four orthogonal choices:
//!
//! * **cipher** — any [`Scheme`] (Table 2's six rows plus fixed point),
//! * **algorithm** — [`ReduceAlgo`]: recursive doubling, ring, or the
//!   in-network switch tree,
//! * **chunking** — [`ChunkMode`]: one synchronous block, strictly
//!   sequential blocks, or the depth-2 pipeline of paper §6 / Fig. 6,
//! * **integrity** — optional HoMAC verification (§5.5) over a digest
//!   side-channel, uniform across all schemes.
//!
//! Cells that previously required a hand-rolled method — e.g. a *verified
//! pipelined float sum on a switch tree* — are now just an [`EngineCfg`].
//!
//! ## Verified transport
//!
//! Verification must work for wire formats (like [`hear_core::Hfp`]) whose
//! reduction is not a ring addition, so it does not tag the payload cipher
//! directly. Instead each element carries a *digest*: up to four `u64`
//! summation lanes of the plaintext (defined per scheme, exact for integer
//! and fixed-point data, quantized within the Table 2 lossiness for
//! floats). The lanes are encrypted under the lossless [`IntSum`] cipher at
//! PRF indices offset by [`DIGEST_BASE`] — disjoint from every payload
//! index — then HoMAC-tagged. The network reduces `(c, d, σ)` packets
//! component-wise; on receipt the engine verifies the tags (any tampering
//! with `d` or `σ` is caught by the MAC), decrypts the lane sums, and
//! checks the decrypted payload against them (any tampering with `c` is
//! caught by the digest). Zero-length inputs and single-rank communicators
//! short-circuit uniformly before any transport.

use crate::secure::{ReduceAlgo, SecureComm, VerificationError};
use hear_core::{CommKeys, Homac, IntSum, Scheme, Scratch, DIGEST_BASE, DIGEST_LANES};
use hear_mpi::Request;
use std::collections::VecDeque;

/// How the engine chunks the payload across collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkMode {
    /// One blocking collective over the whole vector.
    #[default]
    Sync,
    /// Fixed-size blocks, strictly one after another (Fig. 6's "Naïve
    /// (sync)" baseline).
    Blocked(usize),
    /// Fixed-size blocks with two collectives in flight, overlapping
    /// encrypt(n+1) / decrypt(n−1) with the reduction of block n (§6).
    Pipelined(usize),
}

/// Full configuration of one engine call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineCfg {
    pub chunk: ChunkMode,
    /// Attach the HoMAC-authenticated digest side-channel (§5.5).
    pub verified: bool,
    /// Reduction algorithm override; `None` uses the communicator's
    /// [`SecureComm::with_algo`] setting.
    pub algo: Option<ReduceAlgo>,
}

impl EngineCfg {
    /// One blocking collective (the default).
    pub fn sync() -> EngineCfg {
        EngineCfg::default()
    }

    /// Sequential blocks of `block_elems` elements.
    pub fn blocked(block_elems: usize) -> EngineCfg {
        EngineCfg {
            chunk: ChunkMode::Blocked(block_elems),
            ..EngineCfg::default()
        }
    }

    /// Pipelined blocks of `block_elems` elements.
    pub fn pipelined(block_elems: usize) -> EngineCfg {
        EngineCfg {
            chunk: ChunkMode::Pipelined(block_elems),
            ..EngineCfg::default()
        }
    }

    /// Enable HoMAC result verification (requires
    /// [`SecureComm::with_homac`]).
    pub fn verified(mut self) -> EngineCfg {
        self.verified = true;
        self
    }

    /// Override the reduction algorithm for this call only.
    pub fn with_algo(mut self, algo: ReduceAlgo) -> EngineCfg {
        self.algo = Some(algo);
        self
    }
}

/// Why an engine call failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// Float encoding rejected the input (NaN/Inf/overflow).
    Hfp(hear_core::HfpError),
    /// HoMAC or digest verification rejected the aggregate.
    Verification(VerificationError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Hfp(e) => write!(f, "{e}"),
            EngineError::Verification(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<hear_core::HfpError> for EngineError {
    fn from(e: hear_core::HfpError) -> Self {
        EngineError::Hfp(e)
    }
}

impl From<VerificationError> for EngineError {
    fn from(e: VerificationError) -> Self {
        EngineError::Verification(e)
    }
}

impl EngineError {
    /// Unwrap into the float-encoding error. Panics on a verification
    /// error — use only on plain (non-verified) calls, which can never
    /// fail verification.
    pub fn into_hfp(self) -> hear_core::HfpError {
        match self {
            EngineError::Hfp(e) => e,
            EngineError::Verification(_) => {
                unreachable!("plain engine calls cannot fail verification")
            }
        }
    }
}

/// What the network reduces in verified mode: the payload ciphertext plus
/// the encrypted digest lanes and their HoMAC tags (§5.5's "(σ, c)" pair,
/// widened with the digest channel).
#[derive(Debug, Clone)]
pub(crate) struct Packet<W> {
    c: W,
    d: [u64; DIGEST_LANES],
    s: [u64; DIGEST_LANES],
}

/// The combiner for [`Packet`] streams. A non-capturing generic `fn`, so
/// every transport — including the key-less switch service threads — can
/// carry it as a plain function pointer.
fn packet_op<S: Scheme>(a: &Packet<S::Wire>, b: &Packet<S::Wire>) -> Packet<S::Wire> {
    let mut d = [0u64; DIGEST_LANES];
    let mut s = [0u64; DIGEST_LANES];
    for i in 0..DIGEST_LANES {
        d[i] = a.d[i].wrapping_add(b.d[i]);
        s[i] = Homac::combine(a.s[i], b.s[i]);
    }
    Packet {
        c: S::op(&a.c, &b.c),
        d,
        s,
    }
}

/// Two blocks in flight overlap encrypt(n+1) and decrypt(n−1) with the
/// reduction of block n.
const DEPTH: usize = 2;

/// PRF index of the first digest lane of the block starting at `offset`.
#[inline]
fn digest_first(offset: usize) -> u64 {
    DIGEST_BASE + offset as u64 * DIGEST_LANES as u64
}

/// Mask one block and wrap it into verified-transport packets.
fn seal_block<S: Scheme>(
    scheme: &mut S,
    homac: &Homac,
    keys: &CommKeys,
    offset: usize,
    input: &[S::Input],
    wire: &mut Vec<S::Wire>,
    dscratch: &mut Scratch<u64>,
) -> Result<Vec<Packet<S::Wire>>, EngineError> {
    scheme.mask_block(keys, offset as u64, input, wire)?;
    let mut dlanes: Vec<u64> = Vec::with_capacity(input.len() * DIGEST_LANES);
    let mut lanes = [0u64; DIGEST_LANES];
    for x in input {
        scheme.digest(x, &mut lanes);
        dlanes.extend_from_slice(&lanes);
    }
    let first_d = digest_first(offset);
    IntSum::encrypt_in_place(keys, first_d, &mut dlanes, dscratch);
    let sigmas = homac.tag(keys, first_d, &dlanes);
    Ok(wire
        .drain(..)
        .zip(
            dlanes
                .chunks_exact(DIGEST_LANES)
                .zip(sigmas.chunks_exact(DIGEST_LANES)),
        )
        .map(|(c, (d, s))| Packet {
            c,
            d: d.try_into().expect("chunks_exact yields DIGEST_LANES"),
            s: s.try_into().expect("chunks_exact yields DIGEST_LANES"),
        })
        .collect())
}

/// Verify, decrypt and digest-check one aggregated block into `dec`.
#[allow(clippy::too_many_arguments)]
fn open_block<S: Scheme>(
    scheme: &mut S,
    homac: &Homac,
    keys: &CommKeys,
    world: usize,
    offset: usize,
    agg: Vec<Packet<S::Wire>>,
    dec: &mut Vec<S::Input>,
    dscratch: &mut Scratch<u64>,
) -> Result<(), EngineError> {
    let n = agg.len();
    let mut cs: Vec<S::Wire> = Vec::with_capacity(n);
    let mut d_agg: Vec<u64> = Vec::with_capacity(n * DIGEST_LANES);
    let mut s_agg: Vec<u64> = Vec::with_capacity(n * DIGEST_LANES);
    for p in agg {
        cs.push(p.c);
        d_agg.extend_from_slice(&p.d);
        s_agg.extend_from_slice(&p.s);
    }
    let first_d = digest_first(offset);
    if !homac.verify(keys, first_d, &d_agg, &s_agg) {
        return Err(EngineError::Verification(VerificationError));
    }
    IntSum::decrypt_in_place(keys, first_d, &mut d_agg, dscratch);
    scheme.unmask_block(keys, offset as u64, &cs, dec);
    for (i, r) in dec.iter().enumerate() {
        let lanes: [u64; DIGEST_LANES] = d_agg[i * DIGEST_LANES..(i + 1) * DIGEST_LANES]
            .try_into()
            .expect("lane slice has DIGEST_LANES words");
        if !scheme.digest_check(r, &lanes, world) {
            return Err(EngineError::Verification(VerificationError));
        }
    }
    Ok(())
}

impl SecureComm {
    /// The generic secured allreduce: any [`Scheme`] × any [`ReduceAlgo`] ×
    /// any [`ChunkMode`] × optional verification. Every legacy
    /// `allreduce_*` method is a shim over this, and
    /// [`SecureComm::pmpi_allreduce`] routes runtime-typed calls here.
    pub fn allreduce_with<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        cfg: EngineCfg,
    ) -> Result<Vec<S::Input>, EngineError> {
        let block = match cfg.chunk {
            ChunkMode::Sync => data.len().max(1),
            ChunkMode::Blocked(b) | ChunkMode::Pipelined(b) => {
                assert!(b > 0, "block size must be positive");
                b
            }
        };
        // The span mirrors the legacy per-method instrumentation: the
        // Fig. 6 baseline (`Blocked`) intentionally ran unspanned.
        let _span = match cfg.chunk {
            ChunkMode::Pipelined(b) => Some(hear_telemetry::span!(
                "pipeline",
                elems = data.len(),
                block = b
            )),
            ChunkMode::Sync if cfg.verified => Some(hear_telemetry::span!(
                "secure_allreduce_verified",
                elems = data.len()
            )),
            ChunkMode::Sync => Some(hear_telemetry::span!(
                "secure_allreduce",
                elems = data.len()
            )),
            ChunkMode::Blocked(_) => None,
        };
        let homac = if cfg.verified {
            assert!(
                self.world() <= S::MAX_VERIFIED_WORLD,
                "{} digest verification is sound only up to {} ranks",
                S::NAME,
                S::MAX_VERIFIED_WORLD
            );
            Some(
                self.homac
                    .clone()
                    .expect("enable verification with with_homac()"),
            )
        } else {
            None
        };
        self.keys.advance();
        if data.is_empty() {
            return Ok(Vec::new());
        }
        if self.world() == 1 {
            // Nothing crosses the network: mask/unmask locally so every
            // algorithm (even Switch without a switch fabric) degenerates
            // to the identity, and verification has nothing to check.
            return self.run_local(scheme, data, block);
        }
        let algo = cfg.algo.unwrap_or(self.algo);
        match (cfg.chunk, homac) {
            (ChunkMode::Pipelined(_), None) => self.run_plain_pipelined(scheme, data, block, algo),
            (ChunkMode::Pipelined(_), Some(h)) => {
                self.run_verified_pipelined(scheme, data, block, algo, &h)
            }
            (_, None) => self.run_plain_sync(scheme, data, block, algo),
            (_, Some(h)) => self.run_verified_sync(scheme, data, block, algo, &h),
        }
    }

    /// Single-rank path: the aggregate of one contribution is itself.
    fn run_local<S: Scheme>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        block: usize,
    ) -> Result<Vec<S::Input>, EngineError> {
        let mut out: Vec<S::Input> = data.to_vec();
        let mut wire = Vec::new();
        let mut dec = Vec::new();
        let mut offset = 0usize;
        while offset < data.len() {
            let end = (offset + block).min(data.len());
            scheme.mask_block(&self.keys, offset as u64, &data[offset..end], &mut wire)?;
            scheme.unmask_block(&self.keys, offset as u64, &wire, &mut dec);
            for (slot, v) in out[offset..end].iter_mut().zip(dec.iter()) {
                *slot = v.clone();
            }
            offset = end;
        }
        Ok(out)
    }

    /// The algorithm-selected blocking transport.
    fn transport_sync<T, F>(&self, data: Vec<T>, algo: ReduceAlgo, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T + Send + Sync + Clone + 'static,
    {
        match algo {
            ReduceAlgo::RecursiveDoubling => self.comm.allreduce_owned(data, op),
            ReduceAlgo::Ring => self.comm.allreduce_ring_owned(data, op),
            ReduceAlgo::Switch => self.comm.allreduce_inc_owned(data, op),
        }
    }

    /// The algorithm-selected nonblocking transport.
    fn transport_nb<T, F>(&self, data: Vec<T>, algo: ReduceAlgo, op: F) -> Request<Vec<T>>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T + Send + Sync + Clone + 'static,
    {
        match algo {
            ReduceAlgo::RecursiveDoubling => self.comm.iallreduce(data, op),
            ReduceAlgo::Ring => self.comm.iallreduce_ring(data, op),
            ReduceAlgo::Switch => self.comm.iallreduce_inc(data, op),
        }
    }

    fn run_plain_sync<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        block: usize,
        algo: ReduceAlgo,
    ) -> Result<Vec<S::Input>, EngineError> {
        let mut out: Vec<S::Input> = data.to_vec();
        let mut wire = Vec::new();
        let mut dec = Vec::new();
        let mut offset = 0usize;
        while offset < data.len() {
            let end = (offset + block).min(data.len());
            scheme.mask_block(&self.keys, offset as u64, &data[offset..end], &mut wire)?;
            let agg = self.transport_sync(std::mem::take(&mut wire), algo, S::op);
            scheme.unmask_block(&self.keys, offset as u64, &agg, &mut dec);
            for (slot, v) in out[offset..end].iter_mut().zip(dec.iter()) {
                *slot = v.clone();
            }
            offset = end;
        }
        Ok(out)
    }

    fn run_plain_pipelined<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        block: usize,
        algo: ReduceAlgo,
    ) -> Result<Vec<S::Input>, EngineError> {
        let mut out: Vec<S::Input> = data.to_vec();
        let mut inflight: VecDeque<(usize, Request<Vec<S::Wire>>)> = VecDeque::new();
        let mut wire = Vec::new();
        let mut dec = Vec::new();
        let mut offset = 0usize;
        while offset < data.len() {
            let end = (offset + block).min(data.len());
            // An encode error aborts the call; already-posted blocks are
            // detached and complete in the background on every rank.
            scheme.mask_block(&self.keys, offset as u64, &data[offset..end], &mut wire)?;
            hear_telemetry::incr(hear_telemetry::Metric::PipelineBlocks);
            hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, 1);
            inflight.push_back((
                offset,
                self.transport_nb(std::mem::take(&mut wire), algo, S::op),
            ));
            if inflight.len() >= DEPTH {
                let (o, req) = inflight.pop_front().expect("non-empty");
                let agg = {
                    let _w = hear_telemetry::span!("pipeline_wait", offset = o);
                    req.wait()
                };
                hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, -1);
                scheme.unmask_block(&self.keys, o as u64, &agg, &mut dec);
                for (slot, v) in out[o..o + dec.len()].iter_mut().zip(dec.iter()) {
                    *slot = v.clone();
                }
            }
            offset = end;
        }
        while let Some((o, req)) = inflight.pop_front() {
            let agg = {
                let _w = hear_telemetry::span!("pipeline_wait", offset = o);
                req.wait()
            };
            hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, -1);
            scheme.unmask_block(&self.keys, o as u64, &agg, &mut dec);
            for (slot, v) in out[o..o + dec.len()].iter_mut().zip(dec.iter()) {
                *slot = v.clone();
            }
        }
        Ok(out)
    }

    fn run_verified_sync<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        block: usize,
        algo: ReduceAlgo,
        homac: &Homac,
    ) -> Result<Vec<S::Input>, EngineError> {
        let world = self.world();
        let mut out: Vec<S::Input> = data.to_vec();
        let mut wire = Vec::new();
        let mut dec = Vec::new();
        let mut dscratch = Scratch::<u64>::default();
        let mut offset = 0usize;
        while offset < data.len() {
            let end = (offset + block).min(data.len());
            let packets = seal_block(
                scheme,
                homac,
                &self.keys,
                offset,
                &data[offset..end],
                &mut wire,
                &mut dscratch,
            )?;
            let agg = self.transport_sync(packets, algo, packet_op::<S>);
            open_block(
                scheme,
                homac,
                &self.keys,
                world,
                offset,
                agg,
                &mut dec,
                &mut dscratch,
            )?;
            for (slot, v) in out[offset..end].iter_mut().zip(dec.iter()) {
                *slot = v.clone();
            }
            offset = end;
        }
        Ok(out)
    }

    #[allow(clippy::type_complexity)]
    fn run_verified_pipelined<S: Scheme + 'static>(
        &mut self,
        scheme: &mut S,
        data: &[S::Input],
        block: usize,
        algo: ReduceAlgo,
        homac: &Homac,
    ) -> Result<Vec<S::Input>, EngineError> {
        let world = self.world();
        let mut out: Vec<S::Input> = data.to_vec();
        let mut inflight: VecDeque<(usize, Request<Vec<Packet<S::Wire>>>)> = VecDeque::new();
        let mut wire = Vec::new();
        let mut dec = Vec::new();
        let mut dscratch = Scratch::<u64>::default();
        let mut offset = 0usize;
        while offset < data.len() {
            let end = (offset + block).min(data.len());
            let packets = seal_block(
                scheme,
                homac,
                &self.keys,
                offset,
                &data[offset..end],
                &mut wire,
                &mut dscratch,
            )?;
            hear_telemetry::incr(hear_telemetry::Metric::PipelineBlocks);
            hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, 1);
            inflight.push_back((offset, self.transport_nb(packets, algo, packet_op::<S>)));
            if inflight.len() >= DEPTH {
                let (o, req) = inflight.pop_front().expect("non-empty");
                let agg = {
                    let _w = hear_telemetry::span!("pipeline_wait", offset = o);
                    req.wait()
                };
                hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, -1);
                open_block(
                    scheme,
                    homac,
                    &self.keys,
                    world,
                    o,
                    agg,
                    &mut dec,
                    &mut dscratch,
                )?;
                for (slot, v) in out[o..o + dec.len()].iter_mut().zip(dec.iter()) {
                    *slot = v.clone();
                }
            }
            offset = end;
        }
        while let Some((o, req)) = inflight.pop_front() {
            let agg = {
                let _w = hear_telemetry::span!("pipeline_wait", offset = o);
                req.wait()
            };
            hear_telemetry::gauge_add(hear_telemetry::Gauge::PipelineInFlight, -1);
            open_block(
                scheme,
                homac,
                &self.keys,
                world,
                o,
                agg,
                &mut dec,
                &mut dscratch,
            )?;
            for (slot, v) in out[o..o + dec.len()].iter_mut().zip(dec.iter()) {
                *slot = v.clone();
            }
        }
        Ok(out)
    }
}
