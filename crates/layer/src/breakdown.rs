//! Critical-path phase instrumentation (paper Fig. 4).
//!
//! Fig. 4 decomposes a 16-byte `MPI_Allreduce` integer summation into
//! `mem_alloc → encrypt → comm → decrypt → mem_free` and compares the
//! crypto overhead of the SHA-1 and AES-NI PRF backends against the bare
//! runtime. This module reproduces that measurement: each phase is timed
//! separately over many iterations and reported as accumulated time.

use hear_core::{CommKeys, IntSum, Scratch};
use hear_mpi::Communicator;
use std::time::{Duration, Instant};

/// Accumulated per-phase time over a measurement run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseBreakdown {
    pub mem_alloc: Duration,
    pub encrypt: Duration,
    pub comm: Duration,
    pub decrypt: Duration,
    pub mem_free: Duration,
    pub iterations: u32,
}

impl PhaseBreakdown {
    pub fn total(&self) -> Duration {
        self.mem_alloc + self.encrypt + self.comm + self.decrypt + self.mem_free
    }

    /// Crypto overhead relative to communication time — the percentages
    /// printed next to the bars in Fig. 4 (75.5 % for SHA-1, 7.1 % for
    /// AES-NI on the paper's system).
    pub fn crypto_overhead_pct(&self) -> f64 {
        let crypto = self.encrypt + self.decrypt;
        100.0 * crypto.as_secs_f64() / self.comm.as_secs_f64().max(1e-12)
    }

    /// Mean per-iteration latency of one full secured allreduce.
    pub fn per_iteration(&self) -> Duration {
        self.total() / self.iterations.max(1)
    }
}

/// Run `iters` instrumented encrypted allreduce calls of `elems` u32
/// elements (4 elems = the paper's 16 B message) and return the phase
/// accumulation. When `encrypted` is false, only alloc/comm/free run — the
/// bare Cray-MPICH-equivalent baseline bar.
pub fn measure_phases(
    comm: &Communicator,
    keys: &mut CommKeys,
    elems: usize,
    iters: u32,
    encrypted: bool,
) -> PhaseBreakdown {
    let mut b = PhaseBreakdown {
        iterations: iters,
        ..Default::default()
    };
    // The scratch is part of libhear's persistent state (memory pool), not
    // of the per-call critical path.
    let mut scratch = Scratch::with_capacity(elems);
    for i in 0..iters {
        let t0 = Instant::now();
        let mut buf: Vec<u32> = Vec::with_capacity(elems);
        buf.extend((0..elems as u32).map(|j| j.wrapping_mul(i)));
        let t1 = Instant::now();
        b.mem_alloc += t1 - t0;

        if encrypted {
            keys.advance();
            IntSum::encrypt_in_place(keys, 0, &mut buf, &mut scratch);
        }
        let t2 = Instant::now();
        b.encrypt += t2 - t1;

        let mut agg = comm.allreduce(&buf, |a: &u32, c: &u32| a.wrapping_add(*c));
        let t3 = Instant::now();
        b.comm += t3 - t2;

        if encrypted {
            IntSum::decrypt_in_place(keys, 0, &mut agg, &mut scratch);
        }
        let t4 = Instant::now();
        b.decrypt += t4 - t3;

        drop(agg);
        drop(buf);
        b.mem_free += t4.elapsed();
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use hear_mpi::Simulator;
    use hear_prf::Backend;

    fn run_breakdown(backend: Backend, encrypted: bool) -> PhaseBreakdown {
        let results = Simulator::new(2).run(move |comm| {
            let mut keys = CommKeys::generate(2, 5, backend)
                .into_iter()
                .nth(comm.rank())
                .unwrap();
            measure_phases(comm, &mut keys, 4, 200, encrypted)
        });
        results[0]
    }

    #[test]
    fn phases_accumulate() {
        let b = run_breakdown(Backend::AesSoft, true);
        assert_eq!(b.iterations, 200);
        assert!(b.comm > Duration::ZERO);
        assert!(b.encrypt > Duration::ZERO);
        assert!(b.decrypt > Duration::ZERO);
        assert!(b.total() >= b.comm);
        assert!(b.per_iteration() > Duration::ZERO);
    }

    #[test]
    fn baseline_has_no_crypto_time() {
        let b = run_breakdown(Backend::AesSoft, false);
        // encrypt/decrypt phases exist but contain only the timestamp takes.
        assert!(
            b.encrypt < b.comm,
            "baseline encrypt phase should be negligible"
        );
        assert!(b.crypto_overhead_pct() < 50.0);
    }

    #[test]
    fn sha1_costs_more_than_aes() {
        // The Fig. 4 headline: SHA-1's crypto phases are slower than AES's.
        let sha = run_breakdown(Backend::Sha1, true);
        let aes = run_breakdown(Backend::AesSoft, true);
        assert!(
            sha.encrypt + sha.decrypt > aes.encrypt + aes.decrypt,
            "sha {:?} vs aes {:?}",
            sha.encrypt + sha.decrypt,
            aes.encrypt + aes.decrypt
        );
    }
}
