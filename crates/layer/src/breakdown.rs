//! Critical-path phase instrumentation (paper Fig. 4).
//!
//! Fig. 4 decomposes a 16-byte `MPI_Allreduce` integer summation into
//! `mem_alloc → encrypt → comm → decrypt → mem_free` and compares the
//! crypto overhead of the SHA-1 and AES-NI PRF backends against the bare
//! runtime. This module reproduces that measurement as a thin consumer of
//! the `hear-telemetry` span stream: each phase is wrapped in a top-level
//! span recorded into a private registry, and the breakdown is folded from
//! the drained events rather than from ad-hoc `Instant` bookkeeping.

use hear_core::{CommKeys, IntSumScheme, Scheme};
use hear_mpi::Communicator;
use hear_telemetry::Registry;
use std::time::Duration;

/// Accumulated per-phase time over a measurement run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseBreakdown {
    pub mem_alloc: Duration,
    pub encrypt: Duration,
    pub comm: Duration,
    pub decrypt: Duration,
    pub mem_free: Duration,
    pub iterations: u32,
}

impl PhaseBreakdown {
    pub fn total(&self) -> Duration {
        self.mem_alloc + self.encrypt + self.comm + self.decrypt + self.mem_free
    }

    /// Crypto overhead relative to communication time — the percentages
    /// printed next to the bars in Fig. 4 (75.5 % for SHA-1, 7.1 % for
    /// AES-NI on the paper's system). Returns 0 when no communication time
    /// was accumulated (e.g. under `NetConfig::instant()` with a clock too
    /// coarse to see the fabric hop), instead of a nonsense huge ratio.
    pub fn crypto_overhead_pct(&self) -> f64 {
        if self.comm.is_zero() {
            return 0.0;
        }
        let crypto = self.encrypt + self.decrypt;
        100.0 * crypto.as_secs_f64() / self.comm.as_secs_f64()
    }

    /// Mean per-iteration latency of one full secured allreduce.
    /// [`Duration::ZERO`] when no iterations ran.
    pub fn per_iteration(&self) -> Duration {
        if self.iterations == 0 {
            return Duration::ZERO;
        }
        self.total() / self.iterations
    }

    /// Fold a drained span stream into the accumulator. Only *top-level*
    /// spans (depth 0) with the five phase names count: the instrumented
    /// substrate emits nested spans with overlapping names (hear-core's
    /// `encrypt`/`decrypt`, hear-mpi's `allreduce`/`send`/`recv`) and those
    /// must not be double-counted into their enclosing phase.
    fn fold_events(&mut self, events: &[hear_telemetry::SpanEvent]) {
        for ev in events {
            if ev.depth != 0 {
                continue;
            }
            let d = Duration::from_nanos(ev.dur_ns);
            match ev.name {
                "mem_alloc" => self.mem_alloc += d,
                "encrypt" => self.encrypt += d,
                "comm" => self.comm += d,
                "decrypt" => self.decrypt += d,
                "mem_free" => self.mem_free += d,
                _ => {}
            }
        }
    }
}

/// Run `iters` instrumented encrypted allreduce calls of `elems` u32
/// elements (4 elems = the paper's 16 B message) and return the phase
/// accumulation. When `encrypted` is false, only alloc/comm/free run — the
/// bare Cray-MPICH-equivalent baseline bar.
///
/// Each phase is a depth-0 span on a private enabled [`Registry`]
/// installed for the duration of the call, so the measurement is exact
/// even when global `HEAR_TRACE` tracing is live (the private context
/// shadows the global one on this thread).
pub fn measure_phases(
    comm: &Communicator,
    keys: &mut CommKeys,
    elems: usize,
    iters: u32,
    encrypted: bool,
) -> PhaseBreakdown {
    let reg = Registry::new_enabled();
    let ctx = reg.install(Some(comm.rank()));
    let mut b = PhaseBreakdown {
        iterations: iters,
        ..Default::default()
    };
    // The scheme (and its keystream scratch) is part of libhear's
    // persistent state (memory pool), not of the per-call critical path;
    // likewise the reused wire/plaintext staging buffers.
    let mut scheme = IntSumScheme::<u32>::default();
    let mut wire: Vec<u32> = Vec::new();
    let mut dec: Vec<u32> = Vec::new();
    for i in 0..iters {
        let mut buf: Vec<u32>;
        {
            let _s = hear_telemetry::span!("mem_alloc", elems = elems);
            buf = Vec::with_capacity(elems);
            buf.extend((0..elems as u32).map(|j| j.wrapping_mul(i)));
        }
        {
            let _s = hear_telemetry::span!("encrypt", elems = elems);
            if encrypted {
                keys.advance();
                scheme
                    .mask_block(keys, 0, &buf, &mut wire)
                    .expect("integer masking is infallible");
            }
        }
        let mut agg;
        {
            let _s = hear_telemetry::span!("comm", elems = elems);
            let payload: &[u32] = if encrypted { &wire } else { &buf };
            agg = comm.allreduce(payload, |a: &u32, c: &u32| a.wrapping_add(*c));
        }
        {
            let _s = hear_telemetry::span!("decrypt", elems = elems);
            if encrypted {
                scheme.unmask_block(keys, 0, &agg, &mut dec);
                std::mem::swap(&mut agg, &mut dec);
            }
        }
        {
            let _s = hear_telemetry::span!("mem_free", elems = elems);
            drop(agg);
            drop(buf);
        }
        // Drain per iteration so long runs can never overflow the span
        // ring (which would silently lose phase time).
        b.fold_events(&reg.drain_span_events());
    }
    drop(ctx);
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use hear_mpi::Simulator;
    use hear_prf::Backend;

    fn run_breakdown(backend: Backend, encrypted: bool) -> PhaseBreakdown {
        let results = Simulator::new(2).run(move |comm| {
            let mut keys = CommKeys::generate(2, 5, backend)
                .into_iter()
                .nth(comm.rank())
                .unwrap();
            measure_phases(comm, &mut keys, 4, 200, encrypted)
        });
        results[0]
    }

    #[test]
    fn phases_accumulate() {
        let b = run_breakdown(Backend::AesSoft, true);
        assert_eq!(b.iterations, 200);
        assert!(b.comm > Duration::ZERO);
        assert!(b.encrypt > Duration::ZERO);
        assert!(b.decrypt > Duration::ZERO);
        assert!(b.total() >= b.comm);
        assert!(b.per_iteration() > Duration::ZERO);
    }

    #[test]
    fn baseline_has_no_crypto_time() {
        let b = run_breakdown(Backend::AesSoft, false);
        // encrypt/decrypt phases exist but contain only the timestamp takes.
        assert!(
            b.encrypt < b.comm,
            "baseline encrypt phase should be negligible"
        );
        assert!(b.crypto_overhead_pct() < 50.0);
    }

    #[test]
    fn sha1_costs_more_than_aes() {
        // The Fig. 4 headline: SHA-1's crypto phases are slower than AES's.
        let sha = run_breakdown(Backend::Sha1, true);
        let aes = run_breakdown(Backend::AesSoft, true);
        assert!(
            sha.encrypt + sha.decrypt > aes.encrypt + aes.decrypt,
            "sha {:?} vs aes {:?}",
            sha.encrypt + sha.decrypt,
            aes.encrypt + aes.decrypt
        );
    }

    #[test]
    fn zero_comm_overhead_is_zero_not_huge() {
        // Satellite fix: a breakdown with zero accumulated comm time used
        // to divide by (effectively) zero and report absurd percentages.
        let b = PhaseBreakdown {
            encrypt: Duration::from_micros(5),
            decrypt: Duration::from_micros(5),
            ..Default::default()
        };
        assert_eq!(b.crypto_overhead_pct(), 0.0);
    }

    #[test]
    fn zero_iterations_per_iteration_is_zero() {
        // Satellite fix: iterations == 0 must not read as "1 iteration".
        let b = PhaseBreakdown {
            comm: Duration::from_millis(3),
            iterations: 0,
            ..Default::default()
        };
        assert_eq!(b.per_iteration(), Duration::ZERO);
        // And the happy path still divides.
        let b2 = PhaseBreakdown {
            comm: Duration::from_millis(4),
            iterations: 2,
            ..Default::default()
        };
        assert_eq!(b2.per_iteration(), Duration::from_millis(2));
    }

    #[test]
    fn breakdown_is_fold_of_depth0_spans_only() {
        // The phase fold must ignore nested substrate spans even when they
        // reuse a phase name (hear-core emits its own depth-1 "encrypt").
        use hear_telemetry::Registry;
        let reg = Registry::new_enabled();
        {
            let _g = reg.install(Some(0));
            let _outer = hear_telemetry::span!("encrypt");
            let _inner = hear_telemetry::span!("encrypt"); // depth 1
        }
        let evs = reg.drain_span_events();
        assert_eq!(evs.len(), 2);
        let mut b = PhaseBreakdown::default();
        b.fold_events(&evs);
        let top = evs.iter().find(|e| e.depth == 0).unwrap();
        assert_eq!(b.encrypt, Duration::from_nanos(top.dur_ns));
    }
}
