//! The keystream prefetch worker: generates epoch *i+1*'s noise blocks on
//! a rank-local thread while epoch *i* is in its communication phase.
//!
//! HEAR's critical path (§6) is keystream generation plus one combine
//! pass; the combine is fused into the mask kernels (`hear-prf`), which
//! leaves generation. Because key progression is deterministic, the
//! engine can *plan* the next call's streams the moment it advances the
//! collective key — [`hear_core::CommKeys::peek_next_epoch`] — and hand
//! the plan to this worker. The worker fills PRF blocks with its own
//! clone of the cipher and publishes them to the shared
//! [`KeystreamCache`]; the integer schemes then serve masking straight
//! from the cache and fall back to inline generation on any miss.
//!
//! Design points:
//!
//! * **Single job cell.** The producer/consumer hand-off is a
//!   `Mutex<Option<Job>>` + condvar; submitting overwrites any not-yet
//!   started job (only the newest plan matters), so a worker that falls
//!   behind skips epochs instead of queueing stale work. Nothing here
//!   allocates on the submit path.
//! * **Uncounted generation.** The worker uses the PRF's uncounted bulk
//!   fill. The *consumer* attributes blocks/bytes to telemetry on a cache
//!   hit, keeping counter totals identical whether a byte was masked from
//!   the cache or inline, and keeping span lanes rank-attributed.
//! * **Buffer recycling.** [`KeystreamCache::publish`] returns the evicted
//!   generation; the worker keeps those `CacheSlot`s as spares, so the
//!   steady state regenerates in place with zero allocation.
//! * **Shared worker pool.** Generation runs on the process-wide
//!   [`WorkerPool`]'s background lane ([`hear_prf::BgTask`]) instead of a
//!   bespoke per-communicator thread: one submit parks the task in the
//!   pool's single background slot and any idle worker picks it up when no
//!   fork-join masking shards are pending. Nothing spawns until the first
//!   submit, and teardown never joins — dropping the [`Prefetcher`] flips
//!   a shutdown flag and the task retires itself at the next stream
//!   boundary.

use hear_core::{CacheSlot, KeystreamCache, StreamPlan};
use hear_prf::{BgTask, PrfCipher, WorkerPool};
use std::sync::{Arc, Mutex};

/// Most streams one job can plan: own, next and zero noise streams.
pub const MAX_STREAMS: usize = 3;

/// Per-stream generation cap (1 MiB of blocks): beyond this, prefetching
/// would evict itself from cache and the inline path is generating at
/// memory bandwidth anyway.
pub const MAX_PREFETCH_BLOCKS: usize = 1 << 16;

/// One epoch's worth of planned keystream generation.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchJob {
    /// The epoch (`kc` value) the streams belong to.
    pub epoch: u64,
    /// Up to [`MAX_STREAMS`] deduplicated stream plans.
    pub streams: [Option<StreamPlan>; MAX_STREAMS],
}

#[derive(Default)]
struct State {
    job: Option<PrefetchJob>,
    /// A pool worker is inside [`PrefetchTask::run`]'s job loop; further
    /// background wakeups bounce off instead of generating concurrently.
    running: bool,
    shutdown: bool,
    // Spare slot buffers recycled from evicted cache generations, plus one
    // reusable container for the slot list itself. Only the single active
    // runner touches them; they live here so the task owns no second lock.
    spare: Vec<CacheSlot>,
    container: Vec<CacheSlot>,
}

/// The pool-resident half of the prefetcher: picked up by an idle
/// [`WorkerPool`] worker whenever a plan is parked in the job cell.
struct PrefetchTask {
    prf: PrfCipher,
    cache: Arc<KeystreamCache>,
    state: Mutex<State>,
}

/// Owner handle for the prefetch task; dropping it flips the shutdown flag
/// (no join — the shared pool's workers outlive any one communicator).
pub struct Prefetcher {
    task: Arc<PrefetchTask>,
}

impl Prefetcher {
    /// A prefetcher publishing into `cache`, generating with (a clone of)
    /// `prf`. Nothing is scheduled until the first [`Prefetcher::submit`].
    pub fn new(prf: PrfCipher, cache: Arc<KeystreamCache>) -> Prefetcher {
        Prefetcher {
            task: Arc::new(PrefetchTask {
                prf,
                cache,
                state: Mutex::new(State::default()),
            }),
        }
    }

    /// Park a plan for an upcoming epoch in the job cell, replacing any
    /// plan generation has not started yet, and nudge the shared pool.
    /// Never blocks on generation.
    pub fn submit(&mut self, job: PrefetchJob) {
        {
            let mut st = lock_unpoisoned(&self.task.state);
            st.job = Some(job);
        }
        WorkerPool::global().submit_bg(Arc::clone(&self.task) as Arc<dyn BgTask>);
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        // No join: an in-flight runner sees the flag at the next stream
        // boundary and abandons the job; the Arc keeps the task's state
        // alive until then.
        lock_unpoisoned(&self.task.state).shutdown = true;
    }
}

impl BgTask for PrefetchTask {
    fn run(&self) {
        loop {
            let (job, mut slots, mut spare) = {
                let mut st = lock_unpoisoned(&self.state);
                // The active runner drains the job cell itself at the end
                // of each pass; a second wakeup must not touch its state.
                if st.running || st.shutdown {
                    return;
                }
                let Some(job) = st.job.take() else {
                    return;
                };
                st.running = true;
                (
                    job,
                    std::mem::take(&mut st.container),
                    std::mem::take(&mut st.spare),
                )
            };
            for plan in job.streams.into_iter().flatten() {
                // Re-check shutdown between stream fills: teardown (e.g.
                // the engine aborting mid-epoch and dropping the
                // communicator) must never hold a pool worker for a whole
                // multi-MiB plan.
                if lock_unpoisoned(&self.state).shutdown {
                    return;
                }
                let mut slot = spare.pop().unwrap_or_default();
                let n = plan.nblocks.min(MAX_PREFETCH_BLOCKS);
                slot.blocks.resize(n, 0);
                // Generation happens outside the cache lock and uncounted:
                // the consumer does the telemetry accounting on each hit.
                self.prf.fill_blocks_uncounted(
                    plan.base.wrapping_add(plan.first_block as u128),
                    &mut slot.blocks,
                );
                slot.base = plan.base;
                slot.first_block = plan.first_block;
                slots.push(slot);
            }
            let mut evicted = self.cache.publish(job.epoch, slots);
            spare.append(&mut evicted);
            {
                let mut st = lock_unpoisoned(&self.state);
                st.spare = spare;
                st.container = evicted;
                st.running = false;
                if st.job.is_none() || st.shutdown {
                    return;
                }
                // A newer plan arrived while we generated: loop and take it
                // ourselves rather than waiting for the pool to re-wake us.
                st.running = true;
            }
        }
    }
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hear_prf::{Backend, Prf};
    use std::time::{Duration, Instant};

    fn wait_for_hit(cache: &KeystreamCache, epoch: u64, base: u128, n: usize) -> Option<Vec<u128>> {
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            if let Some(blocks) = cache.with_blocks(epoch, base, 0, n, <[u128]>::to_vec) {
                return Some(blocks);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        None
    }

    #[test]
    fn worker_generates_exactly_the_planned_blocks() {
        let prf = PrfCipher::new(Backend::AesSoft, 0xfeed).unwrap();
        let cache = KeystreamCache::new();
        let mut pf = Prefetcher::new(prf.clone(), Arc::clone(&cache));
        let mut streams = [None; MAX_STREAMS];
        streams[0] = Some(StreamPlan {
            base: 500,
            first_block: 0,
            nblocks: 20,
        });
        streams[1] = Some(StreamPlan {
            base: 900,
            first_block: 4,
            nblocks: 6,
        });
        pf.submit(PrefetchJob { epoch: 3, streams });
        let got = wait_for_hit(&cache, 3, 500, 20).expect("stream 0 published");
        for (i, b) in got.iter().enumerate() {
            assert_eq!(*b, prf.eval_block(500 + i as u128));
        }
        let got = cache
            .with_blocks(3, 900, 4, 6, <[u128]>::to_vec)
            .expect("stream 1 published");
        for (i, b) in got.iter().enumerate() {
            assert_eq!(*b, prf.eval_block(900 + 4 + i as u128));
        }
        // The plan's own range is exact: uncovered blocks miss.
        assert!(cache.with_blocks(3, 900, 3, 1, |_| ()).is_none());
    }

    #[test]
    fn successive_epochs_roll_through_and_recycle() {
        let prf = PrfCipher::new(Backend::AesSoft, 1).unwrap();
        let cache = KeystreamCache::new();
        let mut pf = Prefetcher::new(prf.clone(), Arc::clone(&cache));
        for epoch in 1..=5u64 {
            let mut streams = [None; MAX_STREAMS];
            streams[0] = Some(StreamPlan {
                base: epoch as u128 * 1000,
                first_block: 0,
                nblocks: 8,
            });
            pf.submit(PrefetchJob { epoch, streams });
            assert!(wait_for_hit(&cache, epoch, epoch as u128 * 1000, 8).is_some());
        }
        // Only the two newest generations survive.
        assert!(cache.with_blocks(5, 5000, 0, 8, |_| ()).is_some());
        assert!(cache.with_blocks(4, 4000, 0, 8, |_| ()).is_some());
        assert!(cache.with_blocks(3, 3000, 0, 8, |_| ()).is_none());
    }

    #[test]
    fn oversized_plans_are_clamped_not_fatal() {
        let prf = PrfCipher::new(Backend::AesSoft, 2).unwrap();
        let cache = KeystreamCache::new();
        let mut pf = Prefetcher::new(prf, Arc::clone(&cache));
        let mut streams = [None; MAX_STREAMS];
        streams[0] = Some(StreamPlan {
            base: 7,
            first_block: 0,
            nblocks: MAX_PREFETCH_BLOCKS + 100,
        });
        pf.submit(PrefetchJob { epoch: 1, streams });
        assert!(
            wait_for_hit(&cache, 1, 7, MAX_PREFETCH_BLOCKS).is_some(),
            "clamped range is served"
        );
        assert!(cache
            .with_blocks(1, 7, 0, MAX_PREFETCH_BLOCKS + 1, |_| ())
            .is_none());
    }

    #[test]
    fn drop_without_submit_is_a_no_op() {
        let prf = PrfCipher::new(Backend::AesSoft, 3).unwrap();
        let pf = Prefetcher::new(prf, KeystreamCache::new());
        drop(pf); // no thread was ever spawned
    }

    #[test]
    fn drop_mid_job_returns_promptly() {
        // Regression: teardown used to check the shutdown flag only
        // between jobs, so an engine call aborting mid-epoch joined
        // against the full plan (three maximal stream fills). With the
        // in-loop check the worker abandons the job at the next stream
        // boundary.
        let prf = PrfCipher::new(Backend::AesSoft, 4).unwrap();
        let mut pf = Prefetcher::new(prf, KeystreamCache::new());
        let mut streams = [None; MAX_STREAMS];
        for (i, s) in streams.iter_mut().enumerate() {
            *s = Some(StreamPlan {
                base: (i as u128 + 1) << 64,
                first_block: 0,
                nblocks: MAX_PREFETCH_BLOCKS,
            });
        }
        pf.submit(PrefetchJob { epoch: 1, streams });
        let t0 = Instant::now();
        drop(pf);
        // Hang guard, not a benchmark: a stuck join would blow far past
        // this (and the old code could, on a loaded core).
        assert!(t0.elapsed() < Duration::from_secs(30), "teardown hung");
    }
}
