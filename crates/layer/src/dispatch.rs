//! Runtime-typed dispatch — the actual PMPI entry-point shape.
//!
//! A real `MPI_Allreduce` receives its datatype and operation as *runtime
//! arguments*; libhear's interposition function dispatches on that pair
//! (§6: "intercepts the MPI_Allreduce calls and performs encryption and
//! decryption for specific data and operation types"). This module is that
//! dispatcher: one entry point, every supported `(datatype, op)` pair
//! routed to its scheme, every unsupported pair rejected with the paper's
//! rationale instead of silently falling back to plaintext.
//!
//! [`SecureComm::pmpi_allreduce`] is the full front door: it additionally
//! takes an [`EngineCfg`], so any `(datatype, op)` cell can be run
//! blocked, pipelined, on any transport, and HoMAC-verified — the same
//! orthogonality the engine gives the static API.

use crate::engine::{EngineCfg, EngineError};
use crate::secure::{SecureComm, VerificationError};
use hear_core::derived::{decode_logical, encode_bools, MpiOp, UnsupportedOp};
use hear_core::{
    FloatProdScheme, FloatSumScheme, HfpError, HfpFormat, IntProdScheme, IntSumScheme, IntXorScheme,
};

/// A borrowed, runtime-typed send buffer (the `void* sendbuf` +
/// `MPI_Datatype` pair of the C API).
#[derive(Debug, Clone, Copy)]
pub enum TypedSlice<'a> {
    U8(&'a [u8]),
    U16(&'a [u16]),
    U32(&'a [u32]),
    U64(&'a [u64]),
    I32(&'a [i32]),
    I64(&'a [i64]),
    F32(&'a [f32]),
    F64(&'a [f64]),
    Bool(&'a [bool]),
}

impl TypedSlice<'_> {
    pub fn datatype_name(&self) -> &'static str {
        match self {
            TypedSlice::U8(_) => "MPI_UINT8_T",
            TypedSlice::U16(_) => "MPI_UINT16_T",
            TypedSlice::U32(_) => "MPI_UINT32_T",
            TypedSlice::U64(_) => "MPI_UINT64_T",
            TypedSlice::I32(_) => "MPI_INT",
            TypedSlice::I64(_) => "MPI_INT64_T",
            TypedSlice::F32(_) => "MPI_FLOAT",
            TypedSlice::F64(_) => "MPI_DOUBLE",
            TypedSlice::Bool(_) => "MPI_C_BOOL",
        }
    }

    pub fn len(&self) -> usize {
        match self {
            TypedSlice::U8(s) => s.len(),
            TypedSlice::U16(s) => s.len(),
            TypedSlice::U32(s) => s.len(),
            TypedSlice::U64(s) => s.len(),
            TypedSlice::I32(s) => s.len(),
            TypedSlice::I64(s) => s.len(),
            TypedSlice::F32(s) => s.len(),
            TypedSlice::F64(s) => s.len(),
            TypedSlice::Bool(s) => s.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The owned, runtime-typed receive buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum TypedVec {
    U8(Vec<u8>),
    U16(Vec<u16>),
    U32(Vec<u32>),
    U64(Vec<u64>),
    I32(Vec<i32>),
    I64(Vec<i64>),
    F32(Vec<f32>),
    F64(Vec<f64>),
    /// Logical results decode to (or, and) pairs (§5.4).
    Logical(Vec<(bool, bool)>),
    /// Raw booleans, as moved by the data-movement collectives
    /// (allgather/alltoall carry no reduction, so no (or, and) decode).
    Bool(Vec<bool>),
}

/// Why a `(datatype, op)` pair was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchError {
    /// The operation itself is outside HEAR's model (MIN/MAX, user ops).
    Insecure(UnsupportedOp),
    /// The op exists but not for this datatype (e.g. XOR on floats).
    TypeMismatch { datatype: &'static str, op: MpiOp },
    /// Float encoding failed (NaN/Inf/overflow).
    Hfp(HfpError),
    /// HoMAC verification rejected the aggregate.
    Verify(VerificationError),
    /// The transport failed (timeout, dead peer, downed switch) beyond
    /// what the engine's retry policy could absorb.
    Comm(hear_mpi::CommError),
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchError::Insecure(u) => write!(f, "{u}"),
            DispatchError::TypeMismatch { datatype, op } => {
                write!(f, "{op:?} is not defined for {datatype} under HEAR")
            }
            DispatchError::Hfp(e) => write!(f, "{e}"),
            DispatchError::Verify(e) => write!(f, "{e}"),
            DispatchError::Comm(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DispatchError {}

impl From<HfpError> for DispatchError {
    fn from(e: HfpError) -> Self {
        DispatchError::Hfp(e)
    }
}

impl From<EngineError> for DispatchError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Hfp(h) => DispatchError::Hfp(h),
            EngineError::Verification(v) => DispatchError::Verify(v),
            EngineError::Comm(c) => DispatchError::Comm(c),
        }
    }
}

/// Run one integer cell through the named engine entry point, lending the
/// matching lane width's keystream scratch to the scheme for the duration
/// of the call.
macro_rules! int_cell {
    ($self:ident, $cfg:ident, $method:ident, $scheme:ident, $field:ident, $data:expr) => {{
        let mut s = $scheme::with_scratch(std::mem::take(&mut $self.$field));
        let out = $self.$method(&mut s, $data, $cfg);
        $self.$field = s.into_scratch();
        out.map_err(DispatchError::from)
    }};
}

/// Generate a PMPI reduction front door over the full `(datatype, op)`
/// matrix, routed to the named engine entry point. `pmpi_allreduce` and
/// `pmpi_reduce_scatter` are the same matrix — by construction, since they
/// expand from this one macro — differing only in which engine collective
/// runs underneath.
macro_rules! reduction_front_door {
    ($(#[$attr:meta])* $fn_name:ident => $method:ident) => {
        $(#[$attr])*
        pub fn $fn_name(
            &mut self,
            data: TypedSlice<'_>,
            op: MpiOp,
            cfg: EngineCfg,
        ) -> Result<TypedVec, DispatchError> {
            // Reject the insecure operations up front, with the rationale.
            if let Err(u) = op.support() {
                return Err(DispatchError::Insecure(u));
            }
            let mismatch = || DispatchError::TypeMismatch {
                datatype: data.datatype_name(),
                op,
            };
            match (data, op) {
                // --- SUM ----------------------------------------------------
                (TypedSlice::U8(s), MpiOp::Sum) => {
                    int_cell!(self, cfg, $method, IntSumScheme, scratch_u8, s).map(TypedVec::U8)
                }
                (TypedSlice::U16(s), MpiOp::Sum) => {
                    int_cell!(self, cfg, $method, IntSumScheme, scratch_u16, s).map(TypedVec::U16)
                }
                (TypedSlice::U32(s), MpiOp::Sum) => {
                    int_cell!(self, cfg, $method, IntSumScheme, scratch_u32, s).map(TypedVec::U32)
                }
                (TypedSlice::U64(s), MpiOp::Sum) => {
                    int_cell!(self, cfg, $method, IntSumScheme, scratch_u64, s).map(TypedVec::U64)
                }
                (TypedSlice::I32(s), MpiOp::Sum) => {
                    let lanes = hear_core::word::as_unsigned_i32(s);
                    int_cell!(self, cfg, $method, IntSumScheme, scratch_u32, lanes)
                        .map(|v| TypedVec::I32(v.into_iter().map(|x| x as i32).collect()))
                }
                (TypedSlice::I64(s), MpiOp::Sum) => {
                    let lanes = hear_core::word::as_unsigned_i64(s);
                    int_cell!(self, cfg, $method, IntSumScheme, scratch_u64, lanes)
                        .map(|v| TypedVec::I64(v.into_iter().map(|x| x as i64).collect()))
                }
                (TypedSlice::F32(s), MpiOp::Sum) => {
                    let wide: Vec<f64> = s.iter().map(|v| *v as f64).collect();
                    let out = self.$method(
                        &mut FloatSumScheme::new(HfpFormat::fp32(2, 2)),
                        &wide,
                        cfg,
                    )?;
                    Ok(TypedVec::F32(out.into_iter().map(|v| v as f32).collect()))
                }
                (TypedSlice::F64(s), MpiOp::Sum) => self
                    .$method(&mut FloatSumScheme::new(HfpFormat::fp64(2, 2)), s, cfg)
                    .map(TypedVec::F64)
                    .map_err(DispatchError::from),
                // --- PROD ---------------------------------------------------
                (TypedSlice::U32(s), MpiOp::Prod) => {
                    int_cell!(self, cfg, $method, IntProdScheme, scratch_u32, s).map(TypedVec::U32)
                }
                (TypedSlice::U64(s), MpiOp::Prod) => {
                    int_cell!(self, cfg, $method, IntProdScheme, scratch_u64, s).map(TypedVec::U64)
                }
                (TypedSlice::F64(s), MpiOp::Prod) => self
                    .$method(&mut FloatProdScheme::new(HfpFormat::fp64(0, 0)), s, cfg)
                    .map(TypedVec::F64)
                    .map_err(DispatchError::from),
                (TypedSlice::F32(s), MpiOp::Prod) => {
                    let wide: Vec<f64> = s.iter().map(|v| *v as f64).collect();
                    let out = self.$method(
                        &mut FloatProdScheme::new(HfpFormat::fp32(0, 0)),
                        &wide,
                        cfg,
                    )?;
                    Ok(TypedVec::F32(out.into_iter().map(|v| v as f32).collect()))
                }
                // --- XOR ----------------------------------------------------
                (TypedSlice::U16(s), MpiOp::Bxor | MpiOp::Lxor) => {
                    int_cell!(self, cfg, $method, IntXorScheme, scratch_u16, s).map(TypedVec::U16)
                }
                (TypedSlice::U32(s), MpiOp::Bxor | MpiOp::Lxor) => {
                    int_cell!(self, cfg, $method, IntXorScheme, scratch_u32, s).map(TypedVec::U32)
                }
                (TypedSlice::U64(s), MpiOp::Bxor | MpiOp::Lxor) => {
                    int_cell!(self, cfg, $method, IntXorScheme, scratch_u64, s).map(TypedVec::U64)
                }
                // --- logical AND/OR via summation encoding (§5.4) ------------
                (TypedSlice::Bool(s), MpiOp::Land | MpiOp::Lor) => {
                    let mut enc = Vec::new();
                    encode_bools(s, &mut enc);
                    let sums = int_cell!(self, cfg, $method, IntSumScheme, scratch_u32, &enc)?;
                    Ok(TypedVec::Logical(decode_logical(&sums, self.world())))
                }
                // --- everything else is a type mismatch ----------------------
                _ => Err(mismatch()),
            }
        }
    };
}

/// Generate a PMPI data-movement front door dispatched on datatype alone
/// (no reduction happens, so there is no op and no arithmetic): every
/// datatype rides the single-origin cell transport as its exact bit
/// pattern — floats travel as `to_bits` words, so the moved values are
/// bit-for-bit the contributed ones.
macro_rules! movement_front_door {
    ($(#[$attr:meta])* $fn_name:ident => $method:ident) => {
        $(#[$attr])*
        pub fn $fn_name(
            &mut self,
            data: TypedSlice<'_>,
            cfg: EngineCfg,
        ) -> Result<TypedVec, DispatchError> {
            match data {
                TypedSlice::U8(s) => self
                    .$method(&mut IntSumScheme::<u8>::default(), s, cfg)
                    .map(TypedVec::U8)
                    .map_err(DispatchError::from),
                TypedSlice::U16(s) => self
                    .$method(&mut IntSumScheme::<u16>::default(), s, cfg)
                    .map(TypedVec::U16)
                    .map_err(DispatchError::from),
                TypedSlice::U32(s) => self
                    .$method(&mut IntSumScheme::<u32>::default(), s, cfg)
                    .map(TypedVec::U32)
                    .map_err(DispatchError::from),
                TypedSlice::U64(s) => self
                    .$method(&mut IntSumScheme::<u64>::default(), s, cfg)
                    .map(TypedVec::U64)
                    .map_err(DispatchError::from),
                TypedSlice::I32(s) => self
                    .$method(
                        &mut IntSumScheme::<u32>::default(),
                        hear_core::word::as_unsigned_i32(s),
                        cfg,
                    )
                    .map(|v| TypedVec::I32(v.into_iter().map(|x| x as i32).collect()))
                    .map_err(DispatchError::from),
                TypedSlice::I64(s) => self
                    .$method(
                        &mut IntSumScheme::<u64>::default(),
                        hear_core::word::as_unsigned_i64(s),
                        cfg,
                    )
                    .map(|v| TypedVec::I64(v.into_iter().map(|x| x as i64).collect()))
                    .map_err(DispatchError::from),
                TypedSlice::F32(s) => {
                    let bits: Vec<u32> = s.iter().map(|v| v.to_bits()).collect();
                    self.$method(&mut IntSumScheme::<u32>::default(), &bits, cfg)
                        .map(|v| TypedVec::F32(v.into_iter().map(f32::from_bits).collect()))
                        .map_err(DispatchError::from)
                }
                TypedSlice::F64(s) => {
                    let bits: Vec<u64> = s.iter().map(|v| v.to_bits()).collect();
                    self.$method(&mut IntSumScheme::<u64>::default(), &bits, cfg)
                        .map(|v| TypedVec::F64(v.into_iter().map(f64::from_bits).collect()))
                        .map_err(DispatchError::from)
                }
                TypedSlice::Bool(s) => {
                    let bits: Vec<u8> = s.iter().map(|&b| u8::from(b)).collect();
                    self.$method(&mut IntSumScheme::<u8>::default(), &bits, cfg)
                        .map(|v| TypedVec::Bool(v.into_iter().map(|x| x != 0).collect()))
                        .map_err(DispatchError::from)
                }
            }
        }
    };
}

impl SecureComm {
    /// The interposition entry point: `MPI_Allreduce(sendbuf, …, datatype,
    /// op, comm)` with runtime dispatch over every supported pair. Float
    /// SUM uses the FP32/FP64 γ=2 addition layout; float PROD the δ=0
    /// multiplicative layout. Shim over [`SecureComm::pmpi_allreduce`]
    /// with the default (sync, unverified) engine configuration.
    pub fn allreduce_typed(
        &mut self,
        data: TypedSlice<'_>,
        op: MpiOp,
    ) -> Result<TypedVec, DispatchError> {
        self.pmpi_allreduce(data, op, EngineCfg::default())
    }

    reduction_front_door! {
        /// The full PMPI front door: every supported `(datatype, op)` pair,
        /// composed with any [`EngineCfg`] — transport algorithm, blocked or
        /// pipelined chunking, and HoMAC verification are all orthogonal to
        /// the cell. `pmpi_allreduce(data, op, EngineCfg::pipelined(b).verified())`
        /// is the one-call version of the paper's full stack.
        pmpi_allreduce => allreduce_with
    }

    reduction_front_door! {
        /// `MPI_Reduce_scatter_block` front door: the same `(datatype, op)`
        /// matrix as [`SecureComm::pmpi_allreduce`] — the two expand from
        /// one macro, so the matrices cannot drift — routed to the engine's
        /// [`SecureComm::reduce_scatter_with`]. Every rank contributes the
        /// full vector and receives its own fully reduced share (see
        /// [`SecureComm::shard_bounds`] for the sync-mode layout).
        pmpi_reduce_scatter => reduce_scatter_with
    }

    movement_front_door! {
        /// `MPI_Allgather(v)` front door: rank-ordered concatenation of the
        /// per-rank contributions (which may differ in length), dispatched
        /// on datatype alone and composed with any [`EngineCfg`] —
        /// chunking, retries, and per-cell HoMAC verification included.
        pmpi_allgather => allgather_with
    }

    movement_front_door! {
        /// `MPI_Alltoall` front door: `data` carries `world` equal-length
        /// chunks back to back; the result holds the received chunks in
        /// source-rank order. Dispatched on datatype alone, composed with
        /// any [`EngineCfg`].
        pmpi_alltoall => alltoall_with
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::secure::ReduceAlgo;
    use hear_core::{Backend, CommKeys, Homac};
    use hear_mpi::{Communicator, SimConfig, Simulator};

    fn secure(comm: &Communicator, seed: u64) -> SecureComm {
        let keys = CommKeys::generate(comm.world(), seed, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        SecureComm::new(comm.clone(), keys)
    }

    #[test]
    fn dispatch_covers_the_table2_matrix() {
        let results = Simulator::new(2).run(|comm| {
            let mut sc = secure(comm, 1);
            let r = comm.rank() as u32 + 1;
            let a = sc
                .allreduce_typed(TypedSlice::U32(&[r]), MpiOp::Sum)
                .unwrap();
            let b = sc
                .allreduce_typed(TypedSlice::I64(&[-(r as i64)]), MpiOp::Sum)
                .unwrap();
            let c = sc
                .allreduce_typed(TypedSlice::U64(&[r as u64 + 1]), MpiOp::Prod)
                .unwrap();
            let d = sc
                .allreduce_typed(TypedSlice::U32(&[0xF0F0 * r]), MpiOp::Bxor)
                .unwrap();
            let e = sc
                .allreduce_typed(TypedSlice::F32(&[1.5 * r as f32]), MpiOp::Sum)
                .unwrap();
            let f = sc
                .allreduce_typed(TypedSlice::F64(&[2.0, 0.5]), MpiOp::Prod)
                .unwrap();
            let g = sc
                .allreduce_typed(TypedSlice::Bool(&[r == 1, true]), MpiOp::Lor)
                .unwrap();
            (a, b, c, d, e, f, g)
        });
        let (a, b, c, d, e, f, g) = &results[0];
        assert_eq!(*a, TypedVec::U32(vec![3]));
        assert_eq!(*b, TypedVec::I64(vec![-3]));
        assert_eq!(*c, TypedVec::U64(vec![6]));
        assert_eq!(*d, TypedVec::U32(vec![0xF0F0 ^ 0x1E1E0]));
        match e {
            TypedVec::F32(v) => assert!((v[0] - 4.5).abs() < 1e-3),
            other => panic!("wrong type: {other:?}"),
        }
        match f {
            TypedVec::F64(v) => {
                assert!((v[0] - 4.0).abs() < 1e-9);
                assert!((v[1] - 0.25).abs() < 1e-9);
            }
            other => panic!("wrong type: {other:?}"),
        }
        assert_eq!(*g, TypedVec::Logical(vec![(true, false), (true, true)]));
    }

    #[test]
    fn insecure_ops_rejected_before_any_traffic() {
        let results = Simulator::new(1).run(|comm| {
            let mut sc = secure(comm, 2);
            let min = sc.allreduce_typed(TypedSlice::U32(&[1]), MpiOp::Min);
            let user = sc.allreduce_typed(TypedSlice::F64(&[1.0]), MpiOp::UserDefined);
            (min.unwrap_err(), user.unwrap_err())
        });
        assert_eq!(results[0].0, DispatchError::Insecure(UnsupportedOp::MinMax));
        assert_eq!(
            results[0].1,
            DispatchError::Insecure(UnsupportedOp::UserDefined)
        );
    }

    #[test]
    fn type_mismatches_rejected() {
        let results = Simulator::new(1).run(|comm| {
            let mut sc = secure(comm, 3);
            // XOR has no float scheme; PROD has no bool scheme.
            let a = sc.allreduce_typed(TypedSlice::F32(&[1.0]), MpiOp::Bxor);
            let b = sc.allreduce_typed(TypedSlice::Bool(&[true]), MpiOp::Prod);
            (a.unwrap_err(), b.unwrap_err())
        });
        assert!(matches!(results[0].0, DispatchError::TypeMismatch { .. }));
        assert!(matches!(results[0].1, DispatchError::TypeMismatch { .. }));
        assert!(results[0].0.to_string().contains("MPI_FLOAT"));
    }

    #[test]
    fn float_encoding_errors_propagate() {
        let results = Simulator::new(1).run(|comm| {
            let mut sc = secure(comm, 4);
            sc.allreduce_typed(TypedSlice::F64(&[f64::NAN]), MpiOp::Sum)
                .unwrap_err()
        });
        assert!(matches!(
            results[0],
            DispatchError::Hfp(HfpError::NonFinite)
        ));
    }

    #[test]
    fn slice_metadata() {
        let s = TypedSlice::U16(&[1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.datatype_name(), "MPI_UINT16_T");
        assert!(TypedSlice::F64(&[]).is_empty());
    }

    #[test]
    fn pmpi_front_door_composes_previously_unwritable_cells() {
        // Pipelined + HoMAC-verified float sum over the switch tree: before
        // the engine refactor no API spelled this combination at all.
        let results = Simulator::with_config(4, SimConfig::default().with_switch(4)).run(|comm| {
            let homac = Homac::generate(21, Backend::best_available());
            let mut sc = secure(comm, 20).with_homac(homac);
            let data: Vec<f64> = (0..37).map(|j| (comm.rank() + j) as f64 * 0.25).collect();
            let cfg = EngineCfg::pipelined(8)
                .verified()
                .with_algo(ReduceAlgo::Switch);
            let got = sc.pmpi_allreduce(TypedSlice::F64(&data), MpiOp::Sum, cfg);
            // Verified pipelined u64 product on the ring, too.
            let prod = sc
                .pmpi_allreduce(
                    TypedSlice::U64(&[comm.rank() as u64 + 2]),
                    MpiOp::Prod,
                    EngineCfg::pipelined(1)
                        .verified()
                        .with_algo(ReduceAlgo::Ring),
                )
                .unwrap();
            (got.unwrap(), prod)
        });
        for (sum, prod) in &results {
            match sum {
                TypedVec::F64(v) => {
                    for (j, got) in v.iter().enumerate() {
                        let expect: f64 = (0..4).map(|r| (r + j) as f64 * 0.25).sum();
                        assert!((got - expect).abs() < 1e-3, "j={j}: {got} vs {expect}");
                    }
                }
                other => panic!("wrong type: {other:?}"),
            }
            assert_eq!(*prod, TypedVec::U64(vec![2 * 3 * 4 * 5]));
        }
    }

    #[test]
    fn pmpi_reduce_scatter_shares_the_allreduce_matrix() {
        let results = Simulator::new(2).run(|comm| {
            let mut sc = secure(comm, 30);
            let r = comm.rank() as u32;
            let data: Vec<u32> = (0..4).map(|j| j * 10 + r).collect();
            let shard = sc
                .pmpi_reduce_scatter(TypedSlice::U32(&data), MpiOp::Sum, EngineCfg::sync())
                .unwrap();
            let insecure = sc
                .pmpi_reduce_scatter(TypedSlice::U32(&data), MpiOp::Min, EngineCfg::sync())
                .unwrap_err();
            (shard, sc.shard_bounds(4), insecure)
        });
        for (rank, (shard, (lo, hi), insecure)) in results.iter().enumerate() {
            assert_eq!((*lo, *hi), (rank * 2, rank * 2 + 2));
            let expect: Vec<u32> = (*lo..*hi).map(|j| 20 * j as u32 + 1).collect();
            assert_eq!(*shard, TypedVec::U32(expect));
            assert_eq!(*insecure, DispatchError::Insecure(UnsupportedOp::MinMax));
        }
    }

    #[test]
    fn pmpi_allgather_moves_exact_bits_even_ragged() {
        let results = Simulator::new(3).run(|comm| {
            let mut sc = secure(comm, 31);
            let r = comm.rank();
            let mine: Vec<f64> = (0..=r).map(|j| -(j as f64) * 0.1 - r as f64).collect();
            sc.pmpi_allgather(TypedSlice::F64(&mine), EngineCfg::sync())
                .unwrap()
        });
        let expect: Vec<f64> = (0..3)
            .flat_map(|r| (0..=r).map(move |j| -(j as f64) * 0.1 - r as f64))
            .collect();
        for got in &results {
            match got {
                TypedVec::F64(v) => {
                    assert_eq!(v.len(), expect.len());
                    for (a, b) in v.iter().zip(&expect) {
                        assert_eq!(a.to_bits(), b.to_bits());
                    }
                }
                other => panic!("wrong type: {other:?}"),
            }
        }
    }

    #[test]
    fn pmpi_alltoall_transposes_every_datatype_shape() {
        let results = Simulator::new(2).run(|comm| {
            let mut sc = secure(comm, 32);
            let r = comm.rank();
            // Two chunks of two bools each: chunk d is [r==d, true].
            let bools: Vec<bool> = (0..2).flat_map(|d| [r == d, true]).collect();
            let b = sc
                .pmpi_alltoall(TypedSlice::Bool(&bools), EngineCfg::sync())
                .unwrap();
            let ints: Vec<i32> = (0..2).map(|d| -((r * 10 + d) as i32)).collect();
            let i = sc
                .pmpi_alltoall(TypedSlice::I32(&ints), EngineCfg::sync())
                .unwrap();
            (b, i)
        });
        for (me, (b, i)) in results.iter().enumerate() {
            // Chunk from src is [src==me, true].
            let expect_b: Vec<bool> = (0..2).flat_map(|src| [src == me, true]).collect();
            assert_eq!(*b, TypedVec::Bool(expect_b));
            let expect_i: Vec<i32> = (0..2).map(|src| -((src * 10 + me) as i32)).collect();
            assert_eq!(*i, TypedVec::I32(expect_i));
        }
    }

    #[test]
    fn pmpi_verification_failure_surfaces_as_dispatch_error() {
        // Without with_homac() a verified cfg panics; with it, honest
        // networks pass. Exercise the honest path end-to-end here.
        let results = Simulator::new(2).run(|comm| {
            let homac = Homac::generate(22, Backend::best_available());
            let mut sc = secure(comm, 23).with_homac(homac);
            sc.pmpi_allreduce(
                TypedSlice::I32(&[-5, 9]),
                MpiOp::Sum,
                EngineCfg::sync().verified(),
            )
            .unwrap()
        });
        for r in &results {
            assert_eq!(*r, TypedVec::I32(vec![-10, 18]));
        }
    }
}
