//! Runtime-typed dispatch — the actual PMPI entry-point shape.
//!
//! A real `MPI_Allreduce` receives its datatype and operation as *runtime
//! arguments*; libhear's interposition function dispatches on that pair
//! (§6: "intercepts the MPI_Allreduce calls and performs encryption and
//! decryption for specific data and operation types"). This module is that
//! dispatcher: one entry point, every supported `(datatype, op)` pair
//! routed to its scheme, every unsupported pair rejected with the paper's
//! rationale instead of silently falling back to plaintext.

use crate::secure::SecureComm;
use hear_core::derived::{MpiOp, UnsupportedOp};
use hear_core::{HfpError, HfpFormat};

/// A borrowed, runtime-typed send buffer (the `void* sendbuf` +
/// `MPI_Datatype` pair of the C API).
#[derive(Debug, Clone, Copy)]
pub enum TypedSlice<'a> {
    U8(&'a [u8]),
    U16(&'a [u16]),
    U32(&'a [u32]),
    U64(&'a [u64]),
    I32(&'a [i32]),
    I64(&'a [i64]),
    F32(&'a [f32]),
    F64(&'a [f64]),
    Bool(&'a [bool]),
}

impl TypedSlice<'_> {
    pub fn datatype_name(&self) -> &'static str {
        match self {
            TypedSlice::U8(_) => "MPI_UINT8_T",
            TypedSlice::U16(_) => "MPI_UINT16_T",
            TypedSlice::U32(_) => "MPI_UINT32_T",
            TypedSlice::U64(_) => "MPI_UINT64_T",
            TypedSlice::I32(_) => "MPI_INT",
            TypedSlice::I64(_) => "MPI_INT64_T",
            TypedSlice::F32(_) => "MPI_FLOAT",
            TypedSlice::F64(_) => "MPI_DOUBLE",
            TypedSlice::Bool(_) => "MPI_C_BOOL",
        }
    }

    pub fn len(&self) -> usize {
        match self {
            TypedSlice::U8(s) => s.len(),
            TypedSlice::U16(s) => s.len(),
            TypedSlice::U32(s) => s.len(),
            TypedSlice::U64(s) => s.len(),
            TypedSlice::I32(s) => s.len(),
            TypedSlice::I64(s) => s.len(),
            TypedSlice::F32(s) => s.len(),
            TypedSlice::F64(s) => s.len(),
            TypedSlice::Bool(s) => s.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The owned, runtime-typed receive buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum TypedVec {
    U8(Vec<u8>),
    U16(Vec<u16>),
    U32(Vec<u32>),
    U64(Vec<u64>),
    I32(Vec<i32>),
    I64(Vec<i64>),
    F32(Vec<f32>),
    F64(Vec<f64>),
    /// Logical results decode to (or, and) pairs (§5.4).
    Logical(Vec<(bool, bool)>),
}

/// Why a `(datatype, op)` pair was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchError {
    /// The operation itself is outside HEAR's model (MIN/MAX, user ops).
    Insecure(UnsupportedOp),
    /// The op exists but not for this datatype (e.g. XOR on floats).
    TypeMismatch { datatype: &'static str, op: MpiOp },
    /// Float encoding failed (NaN/Inf/overflow).
    Hfp(HfpError),
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchError::Insecure(u) => write!(f, "{u}"),
            DispatchError::TypeMismatch { datatype, op } => {
                write!(f, "{op:?} is not defined for {datatype} under HEAR")
            }
            DispatchError::Hfp(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DispatchError {}

impl From<HfpError> for DispatchError {
    fn from(e: HfpError) -> Self {
        DispatchError::Hfp(e)
    }
}

impl SecureComm {
    /// The interposition entry point: `MPI_Allreduce(sendbuf, …, datatype,
    /// op, comm)` with runtime dispatch over every supported pair. Float
    /// SUM uses the FP32/FP64 γ=2 addition layout; float PROD the δ=0
    /// multiplicative layout.
    pub fn allreduce_typed(
        &mut self,
        data: TypedSlice<'_>,
        op: MpiOp,
    ) -> Result<TypedVec, DispatchError> {
        // Reject the insecure operations up front, with the rationale.
        if let Err(u) = op.support() {
            return Err(DispatchError::Insecure(u));
        }
        let mismatch = || DispatchError::TypeMismatch {
            datatype: data.datatype_name(),
            op,
        };
        match (data, op) {
            // --- SUM ----------------------------------------------------
            (TypedSlice::U8(s), MpiOp::Sum) => Ok(TypedVec::U8(self.allreduce_sum_u8(s))),
            (TypedSlice::U16(s), MpiOp::Sum) => Ok(TypedVec::U16(self.allreduce_sum_u16(s))),
            (TypedSlice::U32(s), MpiOp::Sum) => Ok(TypedVec::U32(self.allreduce_sum_u32(s))),
            (TypedSlice::U64(s), MpiOp::Sum) => Ok(TypedVec::U64(self.allreduce_sum_u64(s))),
            (TypedSlice::I32(s), MpiOp::Sum) => Ok(TypedVec::I32(self.allreduce_sum_i32(s))),
            (TypedSlice::I64(s), MpiOp::Sum) => Ok(TypedVec::I64(self.allreduce_sum_i64(s))),
            (TypedSlice::F32(s), MpiOp::Sum) => Ok(TypedVec::F32(self.allreduce_f32_sum(2, s)?)),
            (TypedSlice::F64(s), MpiOp::Sum) => Ok(TypedVec::F64(
                self.allreduce_float_sum(HfpFormat::fp64(2, 2), s)?,
            )),
            // --- PROD ---------------------------------------------------
            (TypedSlice::U32(s), MpiOp::Prod) => Ok(TypedVec::U32(self.allreduce_prod_u32(s))),
            (TypedSlice::U64(s), MpiOp::Prod) => Ok(TypedVec::U64(self.allreduce_prod_u64(s))),
            (TypedSlice::F64(s), MpiOp::Prod) => Ok(TypedVec::F64(
                self.allreduce_float_prod(HfpFormat::fp64(0, 0), s)?,
            )),
            (TypedSlice::F32(s), MpiOp::Prod) => {
                let wide: Vec<f64> = s.iter().map(|v| *v as f64).collect();
                let out = self.allreduce_float_prod(HfpFormat::fp32(0, 0), &wide)?;
                Ok(TypedVec::F32(out.into_iter().map(|v| v as f32).collect()))
            }
            // --- XOR ----------------------------------------------------
            (TypedSlice::U16(s), MpiOp::Bxor | MpiOp::Lxor) => {
                Ok(TypedVec::U16(self.allreduce_xor_u16(s)))
            }
            (TypedSlice::U32(s), MpiOp::Bxor | MpiOp::Lxor) => {
                Ok(TypedVec::U32(self.allreduce_xor_u32(s)))
            }
            (TypedSlice::U64(s), MpiOp::Bxor | MpiOp::Lxor) => {
                Ok(TypedVec::U64(self.allreduce_xor_u64(s)))
            }
            // --- logical AND/OR via summation encoding (§5.4) ------------
            (TypedSlice::Bool(s), MpiOp::Land | MpiOp::Lor) => {
                Ok(TypedVec::Logical(self.allreduce_logical(s)))
            }
            // --- everything else is a type mismatch ----------------------
            _ => Err(mismatch()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hear_core::{Backend, CommKeys};
    use hear_mpi::{Communicator, Simulator};

    fn secure(comm: &Communicator, seed: u64) -> SecureComm {
        let keys = CommKeys::generate(comm.world(), seed, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        SecureComm::new(comm.clone(), keys)
    }

    #[test]
    fn dispatch_covers_the_table2_matrix() {
        let results = Simulator::new(2).run(|comm| {
            let mut sc = secure(comm, 1);
            let r = comm.rank() as u32 + 1;
            let a = sc
                .allreduce_typed(TypedSlice::U32(&[r]), MpiOp::Sum)
                .unwrap();
            let b = sc
                .allreduce_typed(TypedSlice::I64(&[-(r as i64)]), MpiOp::Sum)
                .unwrap();
            let c = sc
                .allreduce_typed(TypedSlice::U64(&[r as u64 + 1]), MpiOp::Prod)
                .unwrap();
            let d = sc
                .allreduce_typed(TypedSlice::U32(&[0xF0F0 * r]), MpiOp::Bxor)
                .unwrap();
            let e = sc
                .allreduce_typed(TypedSlice::F32(&[1.5 * r as f32]), MpiOp::Sum)
                .unwrap();
            let f = sc
                .allreduce_typed(TypedSlice::F64(&[2.0, 0.5]), MpiOp::Prod)
                .unwrap();
            let g = sc
                .allreduce_typed(TypedSlice::Bool(&[r == 1, true]), MpiOp::Lor)
                .unwrap();
            (a, b, c, d, e, f, g)
        });
        let (a, b, c, d, e, f, g) = &results[0];
        assert_eq!(*a, TypedVec::U32(vec![3]));
        assert_eq!(*b, TypedVec::I64(vec![-3]));
        assert_eq!(*c, TypedVec::U64(vec![6]));
        assert_eq!(*d, TypedVec::U32(vec![0xF0F0 ^ 0x1E1E0]));
        match e {
            TypedVec::F32(v) => assert!((v[0] - 4.5).abs() < 1e-3),
            other => panic!("wrong type: {other:?}"),
        }
        match f {
            TypedVec::F64(v) => {
                assert!((v[0] - 4.0).abs() < 1e-9);
                assert!((v[1] - 0.25).abs() < 1e-9);
            }
            other => panic!("wrong type: {other:?}"),
        }
        assert_eq!(*g, TypedVec::Logical(vec![(true, false), (true, true)]));
    }

    #[test]
    fn insecure_ops_rejected_before_any_traffic() {
        let results = Simulator::new(1).run(|comm| {
            let mut sc = secure(comm, 2);
            let min = sc.allreduce_typed(TypedSlice::U32(&[1]), MpiOp::Min);
            let user = sc.allreduce_typed(TypedSlice::F64(&[1.0]), MpiOp::UserDefined);
            (min.unwrap_err(), user.unwrap_err())
        });
        assert_eq!(results[0].0, DispatchError::Insecure(UnsupportedOp::MinMax));
        assert_eq!(
            results[0].1,
            DispatchError::Insecure(UnsupportedOp::UserDefined)
        );
    }

    #[test]
    fn type_mismatches_rejected() {
        let results = Simulator::new(1).run(|comm| {
            let mut sc = secure(comm, 3);
            // XOR has no float scheme; PROD has no bool scheme.
            let a = sc.allreduce_typed(TypedSlice::F32(&[1.0]), MpiOp::Bxor);
            let b = sc.allreduce_typed(TypedSlice::Bool(&[true]), MpiOp::Prod);
            (a.unwrap_err(), b.unwrap_err())
        });
        assert!(matches!(results[0].0, DispatchError::TypeMismatch { .. }));
        assert!(matches!(results[0].1, DispatchError::TypeMismatch { .. }));
        assert!(results[0].0.to_string().contains("MPI_FLOAT"));
    }

    #[test]
    fn float_encoding_errors_propagate() {
        let results = Simulator::new(1).run(|comm| {
            let mut sc = secure(comm, 4);
            sc.allreduce_typed(TypedSlice::F64(&[f64::NAN]), MpiOp::Sum)
                .unwrap_err()
        });
        assert!(matches!(
            results[0],
            DispatchError::Hfp(HfpError::NonFinite)
        ));
    }

    #[test]
    fn slice_metadata() {
        let s = TypedSlice::U16(&[1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.datatype_name(), "MPI_UINT16_T");
        assert!(TypedSlice::F64(&[]).is_empty());
    }
}
