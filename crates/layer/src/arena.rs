//! Typed scratch arena: the engine-side companion to the byte-level
//! [`crate::pool::MemoryPool`].
//!
//! The pool recycles fixed-size page-aligned transfer blocks; the arena
//! recycles the *typed* staging vectors the engine needs per call — wire
//! ciphertexts, decrypted blocks, digest lanes, HoMAC tags, verified
//! packets, ring segments. Every lease is a plain `Vec<T>` whose capacity
//! survives round trips, so after a short warmup the allreduce hot path
//! performs no heap allocation for staging.
//!
//! Slots are keyed by element type and created lazily: the first
//! [`ScratchArena::put_vec`] of a type boxes one persistent `Option<Vec<T>>`
//! cell; every later lease just moves the vector in and out of that cell
//! (`Option::take` / write-back), which never touches the allocator.
//! Multiple concurrent leases of the same type are supported — each extra
//! one warms up its own cell.
//!
//! Takes and puts are attributed to the same telemetry families as the
//! memory pool (`hear_pool_takes_total` with `source=reuse|fresh`,
//! `hear_pool_puts_total`), so Fig. 4-style breakdowns see one unified
//! picture of buffer recycling.

use hear_telemetry::Metric;
use std::any::{Any, TypeId};

/// A recycling store of typed staging vectors. See the module docs.
#[derive(Default)]
pub struct ScratchArena {
    slots: Vec<(TypeId, Box<dyn Any + Send>)>,
}

impl ScratchArena {
    pub fn new() -> ScratchArena {
        ScratchArena::default()
    }

    /// Lease a vector of `T`: a recycled one (cleared, capacity intact) if
    /// any slot of this type is occupied, a fresh empty one otherwise.
    pub fn take_vec<T: Send + 'static>(&mut self) -> Vec<T> {
        let id = TypeId::of::<T>();
        for (tid, cell) in &mut self.slots {
            if *tid == id {
                let cell = cell
                    .downcast_mut::<Option<Vec<T>>>()
                    .expect("arena slot keyed by its element TypeId");
                if let Some(v) = cell.take() {
                    hear_telemetry::incr(Metric::PoolTakeReuse);
                    return v;
                }
            }
        }
        hear_telemetry::incr(Metric::PoolTakeFresh);
        Vec::new()
    }

    /// Return a leased vector. It is cleared and parked in an empty slot of
    /// its type (one is created on first return — the only allocation this
    /// type will ever cause here).
    pub fn put_vec<T: Send + 'static>(&mut self, mut v: Vec<T>) {
        v.clear();
        hear_telemetry::incr(Metric::PoolPuts);
        let id = TypeId::of::<T>();
        for (tid, cell) in &mut self.slots {
            if *tid == id {
                let cell = cell
                    .downcast_mut::<Option<Vec<T>>>()
                    .expect("arena slot keyed by its element TypeId");
                if cell.is_none() {
                    *cell = Some(v);
                    return;
                }
            }
        }
        self.slots.push((id, Box::new(Some(v))));
    }

    /// Number of slots (occupied or leased-out) across all types.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_capacity_and_clears() {
        let mut arena = ScratchArena::new();
        let mut v: Vec<u32> = arena.take_vec();
        v.extend(0..1000);
        let cap = v.capacity();
        let ptr = v.as_ptr();
        arena.put_vec(v);
        let v2: Vec<u32> = arena.take_vec();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);
        assert_eq!(v2.as_ptr(), ptr, "recycled the same buffer");
    }

    #[test]
    fn types_do_not_alias() {
        let mut arena = ScratchArena::new();
        let mut a: Vec<u32> = arena.take_vec();
        a.reserve(64);
        arena.put_vec(a);
        // A u64 take must not hand back the u32 buffer.
        let b: Vec<u64> = arena.take_vec();
        assert_eq!(b.capacity(), 0);
        arena.put_vec(b);
        assert_eq!(arena.slot_count(), 2);
    }

    #[test]
    fn concurrent_leases_of_one_type_get_distinct_buffers() {
        let mut arena = ScratchArena::new();
        let mut a: Vec<u8> = arena.take_vec();
        a.reserve(16);
        let mut b: Vec<u8> = arena.take_vec();
        b.reserve(32);
        assert_ne!(a.as_ptr(), b.as_ptr());
        arena.put_vec(a);
        arena.put_vec(b);
        assert_eq!(arena.slot_count(), 2);
        // Both parked buffers come back; no third slot appears.
        let a2: Vec<u8> = arena.take_vec();
        let b2: Vec<u8> = arena.take_vec();
        arena.put_vec(a2);
        arena.put_vec(b2);
        assert_eq!(arena.slot_count(), 2);
    }

    #[test]
    fn steady_state_take_put_does_not_grow_slots() {
        let mut arena = ScratchArena::new();
        for round in 0..10 {
            let mut v: Vec<u64> = arena.take_vec();
            v.extend(0..128);
            arena.put_vec(v);
            assert_eq!(arena.slot_count(), 1, "round {round}");
        }
    }
}
