//! The libhear interposition layer.
//!
//! In the paper, libhear sits between the application and the MPI runtime
//! via PMPI and `LD_PRELOAD`: the application still calls
//! `MPI_Allreduce(..., MPI_INT, MPI_SUM, comm)` and the library encrypts,
//! forwards to the real MPI, and decrypts. [`SecureComm`] is the
//! in-process equivalent: it wraps a [`hear_mpi::Communicator`] and
//! exposes the same Allreduce surface, with the key progression, scheme
//! dispatch and optional HoMAC verification handled transparently. The
//! wrapped communicator — and everything on the other side of it,
//! including the INC switch tree — only ever sees ciphertexts.
//!
//! Every method here is a thin shim over the one generic engine,
//! [`SecureComm::allreduce_with`] (see [`crate::engine`]); the lint gate
//! below keeps it that way.
#![deny(clippy::too_many_lines)]

use crate::arena::ScratchArena;
use crate::engine::{EngineCfg, EngineError};
use crate::prefetch::Prefetcher;
use hear_core::{
    CommKeys, FixedCodec, FixedSumScheme, FloatProdScheme, FloatSumExpScheme, FloatSumScheme,
    HfpFormat, Homac, IntProdScheme, IntSumScheme, IntXorScheme, KeystreamCache, Scratch,
};
use hear_mpi::Communicator;
use std::sync::Arc;

/// Which allreduce algorithm carries the ciphertexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReduceAlgo {
    /// Latency-optimal recursive doubling (small messages).
    #[default]
    RecursiveDoubling,
    /// Bandwidth-optimal ring (large messages).
    Ring,
    /// In-network switch tree (requires a switch-enabled simulator).
    Switch,
    /// Two-level hierarchy: groups of `group` consecutive ranks reduce to
    /// a leader, the leaders run a ring, leaders broadcast back. Matches
    /// the flat ring bit-for-bit (all HEAR combines are exactly
    /// associative-commutative) while concentrating inter-node traffic on
    /// one rank per node.
    Hierarchical {
        /// Ranks per leader group (clamped to `1..=world` at call time).
        group: usize,
    },
}

/// Error returned when HoMAC verification rejects a reduction result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerificationError;

impl std::fmt::Display for VerificationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HoMAC verification failed: the network tampered with the reduction"
        )
    }
}

impl std::error::Error for VerificationError {}

/// A ciphertext/tag pair as transported when verification is enabled
/// (§5.5: "sends to the network a pair of values (σ, c)"). The engine
/// transports the richer [`crate::engine`] packet internally; this type
/// remains the public vocabulary for the raw tagged-word protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Tagged<W> {
    pub c: W,
    pub sigma: u64,
}

/// A communicator with transparent HEAR encryption.
pub struct SecureComm {
    pub(crate) comm: Communicator,
    pub(crate) keys: CommKeys,
    pub(crate) homac: Option<Homac>,
    pub(crate) algo: ReduceAlgo,
    /// Typed staging-buffer recycler threaded through the engine so the
    /// hot path stops allocating after warmup.
    pub(crate) arena: ScratchArena,
    /// Keystream prefetch worker (`None` disables overlap; masking then
    /// always generates inline).
    pub(crate) prefetch: Option<Prefetcher>,
    pub(crate) scratch_u32: Scratch<u32>,
    pub(crate) scratch_u64: Scratch<u64>,
    pub(crate) scratch_u16: Scratch<u16>,
    pub(crate) scratch_u8: Scratch<u8>,
    /// Sticky INC→host fallback: set when an epoch lost the switch tree
    /// (`SwitchDown`) and degraded to the ring; later Switch-algo epochs
    /// then route straight to the ring instead of re-probing dead fabric.
    pub(crate) degraded: bool,
    /// Sticky eviction record (original-world rank numbering): like
    /// `degraded`, a shrunk membership never heals — evicted ranks stay
    /// out for the life of the communicator, and per-epoch counters keep
    /// announcing the shrunk world to operators.
    pub(crate) evicted: Vec<usize>,
    /// Current members expressed as original-world ranks (`lineage[r]`
    /// is the launch-time identity of current rank `r`); identity at
    /// construction, remapped by each shrink.
    pub(crate) lineage: Vec<usize>,
    /// Completed membership reconfigurations (0 = never shrunk).
    pub(crate) membership_epoch: u64,
    /// Shrinks not yet collected by the caller.
    pub(crate) membership_changes: Vec<crate::engine::MembershipChange>,
}

impl SecureComm {
    pub fn new(comm: Communicator, mut keys: CommKeys) -> Self {
        assert_eq!(
            comm.world(),
            keys.world(),
            "keys generated for a different communicator"
        );
        assert_eq!(comm.rank(), keys.rank(), "keys belong to a different rank");
        // Prefetch is on by default: the schemes consult the shared cache
        // before generating noise inline, and the engine plans the next
        // epoch's streams for the worker each call.
        // Make this communicator transport-portable: the TCP backend can
        // only ship types its codec registry knows, and the engine's
        // packet payloads are private to this crate.
        crate::wire::register_wire_codecs();
        let comm_world = comm.world();
        let cache = KeystreamCache::new();
        keys.attach_cache(Arc::clone(&cache));
        let prefetch = Some(Prefetcher::new(keys.prf().clone(), cache));
        SecureComm {
            comm,
            keys,
            homac: None,
            algo: ReduceAlgo::default(),
            arena: ScratchArena::new(),
            prefetch,
            scratch_u32: Scratch::default(),
            scratch_u64: Scratch::default(),
            scratch_u16: Scratch::default(),
            scratch_u8: Scratch::default(),
            degraded: false,
            evicted: Vec::new(),
            lineage: (0..comm_world).collect(),
            membership_epoch: 0,
            membership_changes: Vec::new(),
        }
    }

    /// Whether the communicator has fallen back from in-network compute
    /// to a host algorithm after losing the switch tree.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Whether membership ever shrank below the launch-time world.
    pub fn is_shrunk(&self) -> bool {
        !self.evicted.is_empty()
    }

    /// Ranks evicted so far, in original-world numbering.
    pub fn evicted(&self) -> &[usize] {
        &self.evicted
    }

    /// Completed membership reconfigurations since the last call; each
    /// entry reports one shrink (who left, old and new world size).
    pub fn take_membership_changes(&mut self) -> Vec<crate::engine::MembershipChange> {
        std::mem::take(&mut self.membership_changes)
    }

    pub fn with_algo(mut self, algo: ReduceAlgo) -> Self {
        self.algo = algo;
        self
    }

    /// Disable the keystream prefetch worker (e.g. for A/B benchmarks);
    /// every mask/unmask then generates its keystream inline through the
    /// fused kernels.
    pub fn without_prefetch(mut self) -> Self {
        self.prefetch = None;
        self
    }

    pub fn with_homac(mut self, homac: Homac) -> Self {
        self.homac = Some(homac);
        self
    }

    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    pub fn world(&self) -> usize {
        self.comm.world()
    }

    /// Access to the underlying (untrusted-side) communicator for
    /// non-reduction traffic, which HEAR leaves to other mechanisms.
    pub fn raw(&self) -> &Communicator {
        &self.comm
    }

    // ---- integer ops -----------------------------------------------------
    //
    // Each shim lends its lane width's persistent keystream scratch to the
    // scheme for the duration of the engine call, so the hot path never
    // allocates noise buffers.

    /// `MPI_Allreduce(MPI_UINT32_T, MPI_SUM)` — shim over
    /// [`SecureComm::allreduce_with`] / [`SecureComm::pmpi_allreduce`].
    pub fn allreduce_sum_u32(&mut self, data: &[u32]) -> Vec<u32> {
        let mut s = IntSumScheme::with_scratch(std::mem::take(&mut self.scratch_u32));
        let out = self.allreduce_with(&mut s, data, EngineCfg::sync());
        self.scratch_u32 = s.into_scratch();
        out.expect("integer schemes are infallible")
    }

    /// `MPI_Allreduce(MPI_UINT64_T, MPI_SUM)` — shim over
    /// [`SecureComm::allreduce_with`].
    pub fn allreduce_sum_u64(&mut self, data: &[u64]) -> Vec<u64> {
        let mut s = IntSumScheme::with_scratch(std::mem::take(&mut self.scratch_u64));
        let out = self.allreduce_with(&mut s, data, EngineCfg::sync());
        self.scratch_u64 = s.into_scratch();
        out.expect("integer schemes are infallible")
    }

    /// `MPI_Allreduce(MPI_INT, MPI_SUM)` — the paper's headline datatype;
    /// shim over [`SecureComm::allreduce_with`] via the u32 lane view.
    pub fn allreduce_sum_i32(&mut self, data: &[i32]) -> Vec<i32> {
        let lanes = hear_core::word::as_unsigned_i32(data);
        self.allreduce_sum_u32(lanes)
            .into_iter()
            .map(|v| v as i32)
            .collect()
    }

    /// `MPI_Allreduce(MPI_INT64_T, MPI_SUM)` — shim over
    /// [`SecureComm::allreduce_with`] via the u64 lane view.
    pub fn allreduce_sum_i64(&mut self, data: &[i64]) -> Vec<i64> {
        let lanes = hear_core::word::as_unsigned_i64(data);
        self.allreduce_sum_u64(lanes)
            .into_iter()
            .map(|v| v as i64)
            .collect()
    }

    /// `MPI_Allreduce(MPI_UINT32_T, MPI_PROD)` — shim over
    /// [`SecureComm::allreduce_with`].
    pub fn allreduce_prod_u32(&mut self, data: &[u32]) -> Vec<u32> {
        let mut s = IntProdScheme::with_scratch(std::mem::take(&mut self.scratch_u32));
        let out = self.allreduce_with(&mut s, data, EngineCfg::sync());
        self.scratch_u32 = s.into_scratch();
        out.expect("integer schemes are infallible")
    }

    /// `MPI_Allreduce(MPI_UINT64_T, MPI_PROD)` — shim over
    /// [`SecureComm::allreduce_with`].
    pub fn allreduce_prod_u64(&mut self, data: &[u64]) -> Vec<u64> {
        let mut s = IntProdScheme::with_scratch(std::mem::take(&mut self.scratch_u64));
        let out = self.allreduce_with(&mut s, data, EngineCfg::sync());
        self.scratch_u64 = s.into_scratch();
        out.expect("integer schemes are infallible")
    }

    /// `MPI_Allreduce(MPI_UINT32_T, MPI_BXOR)` (also MPI_LXOR on 0/1
    /// data) — shim over [`SecureComm::allreduce_with`].
    pub fn allreduce_xor_u32(&mut self, data: &[u32]) -> Vec<u32> {
        let mut s = IntXorScheme::with_scratch(std::mem::take(&mut self.scratch_u32));
        let out = self.allreduce_with(&mut s, data, EngineCfg::sync());
        self.scratch_u32 = s.into_scratch();
        out.expect("integer schemes are infallible")
    }

    /// `MPI_Allreduce(MPI_UINT64_T, MPI_BXOR)` — shim over
    /// [`SecureComm::allreduce_with`].
    pub fn allreduce_xor_u64(&mut self, data: &[u64]) -> Vec<u64> {
        let mut s = IntXorScheme::with_scratch(std::mem::take(&mut self.scratch_u64));
        let out = self.allreduce_with(&mut s, data, EngineCfg::sync());
        self.scratch_u64 = s.into_scratch();
        out.expect("integer schemes are infallible")
    }

    /// `MPI_Allreduce(MPI_UINT16_T, MPI_SUM)` (also MPI_SHORT via cast) —
    /// shim over [`SecureComm::allreduce_with`].
    pub fn allreduce_sum_u16(&mut self, data: &[u16]) -> Vec<u16> {
        let mut s = IntSumScheme::with_scratch(std::mem::take(&mut self.scratch_u16));
        let out = self.allreduce_with(&mut s, data, EngineCfg::sync());
        self.scratch_u16 = s.into_scratch();
        out.expect("integer schemes are infallible")
    }

    /// `MPI_Allreduce(MPI_BYTE/MPI_UINT8_T, MPI_SUM)` — shim over
    /// [`SecureComm::allreduce_with`].
    pub fn allreduce_sum_u8(&mut self, data: &[u8]) -> Vec<u8> {
        let mut s = IntSumScheme::with_scratch(std::mem::take(&mut self.scratch_u8));
        let out = self.allreduce_with(&mut s, data, EngineCfg::sync());
        self.scratch_u8 = s.into_scratch();
        out.expect("integer schemes are infallible")
    }

    /// `MPI_Allreduce(MPI_UINT16_T, MPI_BXOR)` — shim over
    /// [`SecureComm::allreduce_with`].
    pub fn allreduce_xor_u16(&mut self, data: &[u16]) -> Vec<u16> {
        let mut s = IntXorScheme::with_scratch(std::mem::take(&mut self.scratch_u16));
        let out = self.allreduce_with(&mut s, data, EngineCfg::sync());
        self.scratch_u16 = s.into_scratch();
        out.expect("integer schemes are infallible")
    }

    // ---- fixed point (§5.2) ----------------------------------------------

    /// Fixed-point sum: encode with `codec`, run the integer SUM scheme —
    /// shim over [`SecureComm::allreduce_with`].
    pub fn allreduce_fixed_sum(&mut self, codec: FixedCodec, data: &[f64]) -> Vec<f64> {
        let mut s = FixedSumScheme::with_scratch(codec, std::mem::take(&mut self.scratch_u64));
        let out = self.allreduce_with(&mut s, data, EngineCfg::sync());
        self.scratch_u64 = s.into_scratch();
        out.expect("fixed-point sum is infallible")
    }

    /// Fixed-point product: the output scale compounds with the world
    /// size, so this stays composed over
    /// [`SecureComm::allreduce_prod_u64`] (itself an engine shim).
    pub fn allreduce_fixed_prod(&mut self, codec: FixedCodec, data: &[f64]) -> Vec<f64> {
        let mut lanes = Vec::new();
        codec.encode_slice(data, &mut lanes);
        let agg = self.allreduce_prod_u64(&lanes);
        agg.iter()
            .map(|l| codec.decode_prod(*l, self.world()))
            .collect()
    }

    // ---- floats (§5.3) ---------------------------------------------------

    /// `MPI_Allreduce(MPI_FLOAT/MPI_DOUBLE, MPI_SUM)` via HFP (Eq. 7) —
    /// shim over [`SecureComm::allreduce_with`].
    pub fn allreduce_float_sum(
        &mut self,
        fmt: HfpFormat,
        data: &[f64],
    ) -> Result<Vec<f64>, hear_core::HfpError> {
        self.allreduce_with(&mut FloatSumScheme::new(fmt), data, EngineCfg::sync())
            .map_err(EngineError::into_hfp)
    }

    /// `MPI_Allreduce(MPI_FLOAT, MPI_SUM)` on f32 data (FP32 layout) —
    /// shim over [`SecureComm::allreduce_float_sum`].
    pub fn allreduce_f32_sum(
        &mut self,
        gamma: u32,
        data: &[f32],
    ) -> Result<Vec<f32>, hear_core::HfpError> {
        let wide: Vec<f64> = data.iter().map(|v| *v as f64).collect();
        let out = self.allreduce_float_sum(HfpFormat::fp32(2, gamma), &wide)?;
        Ok(out.into_iter().map(|v| v as f32).collect())
    }

    /// `MPI_Allreduce(MPI_DOUBLE, MPI_PROD)` via HFP (Eq. 6) — shim over
    /// [`SecureComm::allreduce_with`].
    pub fn allreduce_float_prod(
        &mut self,
        fmt: HfpFormat,
        data: &[f64],
    ) -> Result<Vec<f64>, hear_core::HfpError> {
        self.allreduce_with(&mut FloatProdScheme::new(fmt), data, EngineCfg::sync())
            .map_err(EngineError::into_hfp)
    }

    /// Alternative float sum (§5.3.4): global safety, reduced range —
    /// shim over [`SecureComm::allreduce_with`].
    pub fn allreduce_float_sum_v2(
        &mut self,
        fmt: HfpFormat,
        data: &[f64],
    ) -> Result<Vec<f64>, hear_core::HfpError> {
        self.allreduce_with(&mut FloatSumExpScheme::new(fmt), data, EngineCfg::sync())
            .map_err(EngineError::into_hfp)
    }

    // ---- verified reductions (§5.5) ---------------------------------------

    /// Integer sum with HoMAC result verification: the network carries
    /// authenticated packets and the result is rejected if the aggregate
    /// fails authentication. Shim over [`SecureComm::allreduce_with`]
    /// with [`EngineCfg::verified`].
    pub fn allreduce_sum_u32_verified(
        &mut self,
        data: &[u32],
    ) -> Result<Vec<u32>, VerificationError> {
        let mut s = IntSumScheme::with_scratch(std::mem::take(&mut self.scratch_u32));
        let out = self.allreduce_with(&mut s, data, EngineCfg::sync().verified());
        self.scratch_u32 = s.into_scratch();
        out.map_err(|e| match e {
            EngineError::Verification(v) => v,
            EngineError::Hfp(_) => unreachable!("integer schemes are infallible"),
            EngineError::Comm(c) => panic!("allreduce transport failed: {c}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hear_mpi::{SimConfig, Simulator};
    use hear_prf::Backend;

    /// Build per-rank SecureComms inside a simulator run.
    fn secure(comm: &Communicator, seed: u64) -> SecureComm {
        let keys = CommKeys::generate(comm.world(), seed, Backend::AesSoft)
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        SecureComm::new(comm.clone(), keys)
    }

    #[test]
    fn transparent_sum_matches_plaintext_allreduce() {
        for world in [1usize, 2, 3, 5] {
            let results = Simulator::new(world).run(move |comm| {
                let data: Vec<i32> = (0..10).map(|j| (comm.rank() as i32 - 1) * 7 + j).collect();
                let mut sc = secure(comm, 1);
                let enc = sc.allreduce_sum_i32(&data);
                let plain = comm.allreduce(&data, |a, b| a.wrapping_add(*b));
                (enc, plain)
            });
            for (enc, plain) in &results {
                assert_eq!(enc, plain, "world={world}");
            }
        }
    }

    #[test]
    fn all_int_ops_roundtrip() {
        let results = Simulator::new(3).run(|comm| {
            let mut sc = secure(comm, 2);
            let r = comm.rank() as u32 + 1;
            let sum = sc.allreduce_sum_u32(&[r, 100 * r]);
            let prod = sc.allreduce_prod_u64(&[r as u64 + 1]);
            let xor = sc.allreduce_xor_u32(&[r * 5]);
            (sum, prod, xor)
        });
        for (sum, prod, xor) in &results {
            assert_eq!(*sum, vec![6, 600]);
            assert_eq!(*prod, vec![2 * 3 * 4]);
            assert_eq!(*xor, vec![5 ^ 10 ^ 15]);
        }
    }

    #[test]
    fn ring_and_switch_algorithms_agree() {
        let results = Simulator::with_config(4, SimConfig::default().with_switch(4)).run(|comm| {
            let data: Vec<u32> = (0..50).map(|j| comm.rank() as u32 * 1000 + j).collect();
            let rd = secure(comm, 3).allreduce_sum_u32(&data);
            let ring = secure(comm, 3)
                .with_algo(ReduceAlgo::Ring)
                .allreduce_sum_u32(&data);
            let inc = secure(comm, 3)
                .with_algo(ReduceAlgo::Switch)
                .allreduce_sum_u32(&data);
            (rd, ring, inc)
        });
        for (rd, ring, inc) in &results {
            assert_eq!(rd, ring);
            assert_eq!(rd, inc);
        }
    }

    #[test]
    fn float_sum_over_the_network() {
        let results = Simulator::new(4).run(|comm| {
            let data: Vec<f64> = (0..8)
                .map(|j| (comm.rank() + 1) as f64 * 0.5 + j as f64)
                .collect();
            secure(comm, 4)
                .allreduce_float_sum(HfpFormat::fp32(2, 2), &data)
                .unwrap()
        });
        for got in &results {
            for (j, v) in got.iter().enumerate() {
                let expect = (1..=4).map(|r| r as f64 * 0.5 + j as f64).sum::<f64>();
                assert!((v - expect).abs() / expect < 1e-5, "j={j} {v} vs {expect}");
            }
        }
    }

    #[test]
    fn f32_api_and_float_prod() {
        let results = Simulator::new(2).run(|comm| {
            let mut sc = secure(comm, 5);
            let s = sc.allreduce_f32_sum(2, &[1.5f32, -2.0]).unwrap();
            let p = sc
                .allreduce_float_prod(HfpFormat::fp32(0, 0), &[2.0, 3.0])
                .unwrap();
            (s, p)
        });
        for (s, p) in &results {
            assert!((s[0] - 3.0).abs() < 1e-4);
            assert!((s[1] + 4.0).abs() < 1e-4);
            assert!((p[0] - 4.0).abs() < 1e-4);
            assert!((p[1] - 9.0).abs() < 1e-4);
        }
    }

    #[test]
    fn float_sum_v2_small_values() {
        let results = Simulator::new(3).run(|comm| {
            secure(comm, 6)
                .allreduce_float_sum_v2(HfpFormat::fp64(0, 0), &[0.25, -0.1])
                .unwrap()
        });
        for got in &results {
            assert!((got[0] - 0.75).abs() < 1e-8);
            assert!((got[1] + 0.3).abs() < 1e-8);
        }
    }

    #[test]
    fn fixed_point_ops() {
        let results = Simulator::new(2).run(|comm| {
            let mut sc = secure(comm, 7);
            let codec = FixedCodec::new(16);
            let s = sc.allreduce_fixed_sum(codec, &[1.25, -0.5]);
            let p = sc.allreduce_fixed_prod(codec, &[1.5]);
            (s, p)
        });
        for (s, p) in &results {
            assert!((s[0] - 2.5).abs() < 1e-4);
            assert!((s[1] + 1.0).abs() < 1e-4);
            assert!((p[0] - 2.25).abs() < 1e-4);
        }
    }

    #[test]
    fn verified_sum_accepts_honest_network() {
        let results = Simulator::new(3).run(|comm| {
            let homac = Homac::generate(11, Backend::AesSoft);
            let mut sc = secure(comm, 8).with_homac(homac);
            sc.allreduce_sum_u32_verified(&[comm.rank() as u32 + 1, 7])
        });
        for r in &results {
            assert_eq!(r.as_ref().unwrap(), &vec![6, 21]);
        }
    }

    #[test]
    fn verified_sum_rejects_tampering_switch() {
        // A malicious in-network reducer that flips a bit in the data
        // channel: HoMAC must catch it end-to-end.
        let results = Simulator::new(2).run(|comm| {
            let homac = Homac::generate(12, Backend::AesSoft);
            let keys = CommKeys::generate(2, 9, Backend::AesSoft)
                .into_iter()
                .nth(comm.rank())
                .unwrap();
            let mut sc = SecureComm::new(comm.clone(), keys).with_homac(homac.clone());
            // Tamper by post-processing what an evil switch would emit: we
            // simulate it by corrupting the aggregated pair on one rank
            // before verification — through the public API this means the
            // transport was dishonest. Here: run the honest path but then
            // check that a corrupted aggregate fails `verify`.
            sc.keys.advance();
            let mut buf = vec![41u32, 2];
            hear_core::IntSum::encrypt_in_place(&sc.keys, 0, &mut buf, &mut sc.scratch_u32);
            let tags = homac.tag(&sc.keys, 0, &buf);
            let mut agg = comm.allreduce(&buf, |a, b| a.wrapping_add(*b));
            let sigma = comm.allreduce(&tags, |a, b| Homac::combine(*a, *b));
            assert!(homac.verify(&sc.keys, 0, &agg, &sigma));
            agg[0] = agg[0].wrapping_add(3); // the attack
            assert!(!homac.verify(&sc.keys, 0, &agg, &sigma));
            true
        });
        assert!(results.iter().all(|r| *r));
    }

    #[test]
    #[should_panic(expected = "different rank")]
    fn mismatched_keys_rejected() {
        Simulator::new(2).run(|comm| {
            if comm.rank() == 0 {
                // Deliberately take rank 1's keys on rank 0.
                let keys = CommKeys::generate(2, 1, Backend::AesSoft).pop().unwrap();
                let _ = SecureComm::new(comm.clone(), keys);
            } else {
                // Panic the other rank too so the scope unwinds cleanly.
                panic!("keys belong to a different rank (peer)");
            }
        });
    }
}

#[cfg(test)]
mod narrow_lane_tests {
    use super::*;
    use hear_mpi::Simulator;
    use hear_prf::Backend;

    #[test]
    fn u16_and_u8_reductions() {
        let results = Simulator::new(3).run(|comm| {
            let keys = CommKeys::generate(3, 77, Backend::best_available())
                .into_iter()
                .nth(comm.rank())
                .unwrap();
            let mut sc = SecureComm::new(comm.clone(), keys);
            let s16 = sc.allreduce_sum_u16(&[1000, u16::MAX]);
            let s8 = sc.allreduce_sum_u8(&[50, 200]);
            let x16 = sc.allreduce_xor_u16(&[0xA5A5]);
            (s16, s8, x16)
        });
        for (s16, s8, x16) in &results {
            assert_eq!(*s16, vec![3000, u16::MAX.wrapping_mul(3)]);
            assert_eq!(*s8, vec![150, 200u8.wrapping_mul(3)]);
            assert_eq!(*x16, vec![0xA5A5]); // odd count
        }
    }
}
