//! TCP wire codecs for this crate's private transport payloads.
//!
//! The TCP backend ([`hear_mpi::tcp`]) serializes `Box<dyn Any>` payloads
//! through a runtime codec registry; the primitive `Vec<uN>` payloads of
//! the host collectives are built in, but the HEAR engine additionally
//! puts three of its own types on the wire:
//!
//! * `Vec<Hfp>` — unverified float-scheme ciphertexts (one HFP ring
//!   element per value);
//! * `Vec<Packet<W>>` — the verified path's §5.5 `(c, d, σ)` triples, for
//!   every wire word the schemes use (`u8/u16/u32/u64` integer rings,
//!   `Hfp` float ring);
//! * `Vec<Tagged<u64>>` — the verified single-origin cell transport of
//!   allgather/alltoall (padded cell + shared-stream MAC tag).
//!
//! [`register_wire_codecs`] is idempotent (guarded by a [`Once`]) and is
//! invoked from `SecureComm::new`, so any program that constructs a
//! secure communicator can run over sockets without extra wiring — the
//! mirror of how [`crate::chaos::with_packet_hooks`] teaches the fault
//! injector about the same types.

use crate::engine::Packet;
use crate::secure::Tagged;
use hear_core::{Hfp, DIGEST_LANES};
use hear_mpi::tcp::wire::{register_vec_codec, WIRE_ID_USER_BASE};
use std::sync::Once;

/// Fixed-width wire image for one element: the codec registry encodes
/// `Vec<T>` as a flat run of equal-sized cells.
trait WireElem: Sized {
    const BYTES: usize;
    fn put(&self, out: &mut Vec<u8>);
    fn get(b: &[u8]) -> Option<Self>;
}

macro_rules! impl_wire_elem_int {
    ($($t:ty),+) => {$(
        impl WireElem for $t {
            const BYTES: usize = std::mem::size_of::<$t>();
            fn put(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn get(b: &[u8]) -> Option<$t> {
                Some(<$t>::from_le_bytes(b.try_into().ok()?))
            }
        }
    )+};
}
impl_wire_elem_int!(u8, u16, u32, u64);

/// 25 bytes: sign, exp, sig, ew, mw. The exponent/significand are ring
/// elements, so every bit pattern is admissible; only a non-boolean sign
/// byte marks the cell undecodable.
impl WireElem for Hfp {
    const BYTES: usize = 25;
    fn put(&self, out: &mut Vec<u8>) {
        out.push(self.sign as u8);
        out.extend_from_slice(&self.exp.to_le_bytes());
        out.extend_from_slice(&self.sig.to_le_bytes());
        out.extend_from_slice(&self.ew.to_le_bytes());
        out.extend_from_slice(&self.mw.to_le_bytes());
    }
    fn get(b: &[u8]) -> Option<Hfp> {
        let sign = match b[0] {
            0 => false,
            1 => true,
            _ => return None,
        };
        Some(Hfp {
            sign,
            exp: u64::from_le_bytes(b[1..9].try_into().ok()?),
            sig: u64::from_le_bytes(b[9..17].try_into().ok()?),
            ew: u32::from_le_bytes(b[17..21].try_into().ok()?),
            mw: u32::from_le_bytes(b[21..25].try_into().ok()?),
        })
    }
}

fn hfp_put(v: &Hfp, out: &mut Vec<u8>) {
    v.put(out);
}

fn hfp_get(b: &[u8]) -> Option<Hfp> {
    Hfp::get(b)
}

fn packet_put<W: WireElem>(p: &Packet<W>, out: &mut Vec<u8>) {
    p.c.put(out);
    for d in &p.d {
        out.extend_from_slice(&d.to_le_bytes());
    }
    for s in &p.s {
        out.extend_from_slice(&s.to_le_bytes());
    }
}

fn packet_get<W: WireElem>(b: &[u8]) -> Option<Packet<W>> {
    let c = W::get(&b[..W::BYTES])?;
    let mut d = [0u64; DIGEST_LANES];
    let mut s = [0u64; DIGEST_LANES];
    for (i, lane) in d.iter_mut().enumerate() {
        let at = W::BYTES + i * 8;
        *lane = u64::from_le_bytes(b[at..at + 8].try_into().ok()?);
    }
    for (i, lane) in s.iter_mut().enumerate() {
        let at = W::BYTES + (DIGEST_LANES + i) * 8;
        *lane = u64::from_le_bytes(b[at..at + 8].try_into().ok()?);
    }
    Some(Packet { c, d, s })
}

const fn packet_bytes<W: WireElem>() -> usize {
    W::BYTES + 2 * DIGEST_LANES * 8
}

/// 16 bytes: padded cell + shared-stream MAC tag, the verified
/// single-origin transport of allgather/alltoall.
fn tagged_put(t: &Tagged<u64>, out: &mut Vec<u8>) {
    out.extend_from_slice(&t.c.to_le_bytes());
    out.extend_from_slice(&t.sigma.to_le_bytes());
}

fn tagged_get(b: &[u8]) -> Option<Tagged<u64>> {
    Some(Tagged {
        c: u64::from_le_bytes(b[..8].try_into().ok()?),
        sigma: u64::from_le_bytes(b[8..16].try_into().ok()?),
    })
}

/// Register every hear-layer payload codec with the TCP transport's
/// registry. Idempotent and thread-safe; called by `SecureComm::new`, and
/// callable directly by tests that drive the transport below the engine.
pub fn register_wire_codecs() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        register_vec_codec::<Hfp>(WIRE_ID_USER_BASE, Hfp::BYTES, hfp_put, hfp_get);
        register_vec_codec::<Packet<u8>>(
            WIRE_ID_USER_BASE + 1,
            packet_bytes::<u8>(),
            packet_put::<u8>,
            packet_get::<u8>,
        );
        register_vec_codec::<Packet<u16>>(
            WIRE_ID_USER_BASE + 2,
            packet_bytes::<u16>(),
            packet_put::<u16>,
            packet_get::<u16>,
        );
        register_vec_codec::<Packet<u32>>(
            WIRE_ID_USER_BASE + 3,
            packet_bytes::<u32>(),
            packet_put::<u32>,
            packet_get::<u32>,
        );
        register_vec_codec::<Packet<u64>>(
            WIRE_ID_USER_BASE + 4,
            packet_bytes::<u64>(),
            packet_put::<u64>,
            packet_get::<u64>,
        );
        register_vec_codec::<Packet<Hfp>>(
            WIRE_ID_USER_BASE + 5,
            packet_bytes::<Hfp>(),
            packet_put::<Hfp>,
            packet_get::<Hfp>,
        );
        register_vec_codec::<Tagged<u64>>(WIRE_ID_USER_BASE + 6, 16, tagged_put, tagged_get);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use hear_mpi::tcp::wire::{decode_payload, encode_payload};

    #[test]
    fn hfp_vectors_roundtrip_bitexact() {
        register_wire_codecs();
        let v: Vec<Hfp> = (0..9)
            .map(|i| Hfp {
                sign: i % 2 == 0,
                exp: 0xABCD_0000 + i,
                sig: (1 << 20) + i,
                ew: 10,
                mw: 20,
            })
            .collect();
        let (id, bytes) = encode_payload(&v);
        assert_eq!(id, WIRE_ID_USER_BASE);
        let back = decode_payload(id, &bytes);
        assert_eq!(back.downcast_ref::<Vec<Hfp>>(), Some(&v));
    }

    #[test]
    fn packet_vectors_roundtrip_all_wire_words() {
        register_wire_codecs();
        fn packet<W: WireElem>(c: W) -> Packet<W> {
            Packet {
                c,
                d: [11, 22, 33, 44],
                s: [u64::MAX, 0, 1, 0x8000_0000_0000_0000],
            }
        }
        let vu32 = vec![packet(7u32), packet(u32::MAX)];
        let (id, bytes) = encode_payload(&vu32);
        let back = decode_payload(id, &bytes);
        let back = back.downcast_ref::<Vec<Packet<u32>>>().unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].c, 7);
        assert_eq!(back[1].c, u32::MAX);
        assert_eq!(back[1].d, [11, 22, 33, 44]);
        assert_eq!(back[1].s[0], u64::MAX);

        let h = Hfp {
            sign: true,
            exp: 3,
            sig: 1 << 21,
            ew: 8,
            mw: 21,
        };
        let vh = vec![packet(h)];
        let (id, bytes) = encode_payload(&vh);
        let back = decode_payload(id, &bytes);
        assert_eq!(back.downcast_ref::<Vec<Packet<Hfp>>>().unwrap()[0].c, h);
    }

    #[test]
    fn tagged_cell_vectors_roundtrip_bitexact() {
        register_wire_codecs();
        let v: Vec<Tagged<u64>> = (0..5)
            .map(|i| Tagged {
                c: 0xDEAD_BEEF_0000_0000 | i,
                sigma: u64::MAX - i,
            })
            .collect();
        let (id, bytes) = encode_payload(&v);
        assert_eq!(id, WIRE_ID_USER_BASE + 6);
        let back = decode_payload(id, &bytes);
        assert_eq!(back.downcast_ref::<Vec<Tagged<u64>>>(), Some(&v));
    }

    #[test]
    fn corrupt_sign_byte_poisons_the_message() {
        register_wire_codecs();
        let v = vec![Hfp::zero(8, 23)];
        let (id, mut bytes) = encode_payload(&v);
        bytes[0] = 9; // not a boolean
        let back = decode_payload(id, &bytes);
        assert!(back.downcast_ref::<Vec<Hfp>>().is_none());
        assert!(back
            .downcast_ref::<hear_mpi::tcp::wire::WireUndecodable>()
            .is_some());
    }
}
