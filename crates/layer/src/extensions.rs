//! HEAR extensions (paper §8 and §5.4): collectives beyond Allreduce,
//! derived logical/statistical reductions, complex datatypes, and
//! one-to-one communication over a pairwise key matrix.
//!
//! These follow the paper's remarks: broadcast/reduce/gather "work
//! similarly to Allreduce, however, without any INC"; one-to-one traffic
//! needs a matrix of keys — Θ(N) space per rank instead of the Θ(1) of
//! the collective schemes; AND/OR ride on summation with O(log₂ P)
//! ciphertext growth; MIN/MAX remain rejected for the §5.4 security
//! reason (see [`hear_core::derived::UnsupportedOp`]).

use crate::engine::EngineCfg;
use crate::secure::SecureComm;
use hear_core::derived::{
    decode_logical, encode_bools, moments_to_stats, variance_moments, MpiOp, UnsupportedOp,
};
use hear_core::{HfpFormat, IntSum, IntSumScheme};
use hear_mpi::Communicator;
use hear_prf::{keystream_u32, Backend, Prf, PrfCipher};
use std::collections::HashMap;

impl SecureComm {
    /// Operator guard: the layer-level answer to "can I run this MPI_Op
    /// under HEAR?" with the paper's rationale in the error.
    pub fn check_op(op: MpiOp) -> Result<&'static str, UnsupportedOp> {
        op.support()
    }

    /// `MPI_Allreduce(MPI_C_BOOL, MPI_LAND/MPI_LOR)` via the §5.4
    /// summation encoding: returns `(or, and)` per element. Derived shim
    /// over [`SecureComm::allreduce_with`] (via the integer SUM path; see
    /// also [`SecureComm::pmpi_allreduce`]).
    pub fn allreduce_logical(&mut self, bits: &[bool]) -> Vec<(bool, bool)> {
        let mut enc = Vec::new();
        encode_bools(bits, &mut enc);
        let sums = self.allreduce_sum_u32(&enc);
        decode_logical(&sums, self.world())
    }

    /// Cluster-wide mean and variance of per-rank samples (§5.4's
    /// preprocessing pattern: square locally, SUM globally). `n_total` is
    /// returned alongside so callers can weight further. Composes two
    /// engine shims (see [`SecureComm::allreduce_with`]).
    pub fn allreduce_variance(&mut self, samples: &[f64]) -> (f64, f64, u64) {
        let (s, s2) = variance_moments(samples);
        let counts = self.allreduce_sum_u64(&[samples.len() as u64]);
        let codec = hear_core::FixedCodec::new(20);
        let moments = self.allreduce_fixed_sum(codec, &[s, s2]);
        let n = counts[0];
        let (mean, var) = moments_to_stats(moments[0], moments[1], n.max(1));
        (mean, var, n)
    }

    /// Complex float summation (Table 2's "Float, Complex" datatype):
    /// component-wise Eq. 7 over interleaved (re, im) lanes. Derived shim
    /// over [`SecureComm::allreduce_with`] (via the float SUM path).
    pub fn allreduce_complex_sum(
        &mut self,
        fmt: HfpFormat,
        data: &[(f64, f64)],
    ) -> Result<Vec<(f64, f64)>, hear_core::HfpError> {
        let mut flat = Vec::with_capacity(data.len() * 2);
        for (re, im) in data {
            flat.push(*re);
            flat.push(*im);
        }
        let out = self.allreduce_float_sum(fmt, &flat)?;
        Ok(out.chunks_exact(2).map(|c| (c[0], c[1])).collect())
    }

    /// Complex float *product* (the other half of Table 2's "Float,
    /// Complex"): products are not component-wise, but in polar form they
    /// decompose exactly onto the two HEAR float schemes — magnitudes
    /// multiply (Eq. 6) while phases add (Eq. 7). Phases are reduced
    /// mod 2π on decode. Composes the two float engine shims (see
    /// [`SecureComm::allreduce_with`]).
    pub fn allreduce_complex_prod(
        &mut self,
        data: &[(f64, f64)],
    ) -> Result<Vec<(f64, f64)>, hear_core::HfpError> {
        let mut mags = Vec::with_capacity(data.len());
        let mut phases = Vec::with_capacity(data.len());
        for (re, im) in data {
            let (r, theta) = ((re * re + im * im).sqrt(), im.atan2(*re));
            mags.push(r);
            phases.push(theta);
        }
        // Magnitude channel: multiplicative scheme, δ=0 (fp64 for range —
        // products of many magnitudes stress the exponent).
        let mag_prod = self.allreduce_float_prod(HfpFormat::fp64(0, 0), &mags)?;
        // Phase channel: additive scheme; the sum of phases can exceed the
        // fp32 plaintext range only after ~2^120 factors, so fp32 γ=2 is
        // plenty.
        let phase_sum = self.allreduce_float_sum(HfpFormat::fp32(2, 2), &phases)?;
        Ok(mag_prod
            .iter()
            .zip(&phase_sum)
            .map(|(r, theta)| (r * theta.cos(), r * theta.sin()))
            .collect())
    }

    /// Encrypted `MPI_Reduce(MPI_SUM)` to `root` (§8: like Allreduce,
    /// without INC). Only the root's return value is the reduction; other
    /// ranks receive `None`.
    pub fn reduce_sum_u32(&mut self, root: usize, data: &[u32]) -> Option<Vec<u32>> {
        self.keys.advance();
        let mut buf = data.to_vec();
        IntSum::encrypt_in_place(&self.keys, 0, &mut buf, &mut self.scratch_u32);
        let mut agg = self
            .comm
            .reduce(root, buf, |a: &u32, b: &u32| a.wrapping_add(*b));
        if self.comm.rank() == root {
            IntSum::decrypt_in_place(&self.keys, 0, &mut agg, &mut self.scratch_u32);
            Some(agg)
        } else {
            None
        }
    }

    /// Encrypted broadcast (§8): the payload crosses the untrusted network
    /// XOR-padded with the communicator's collective keystream; every rank
    /// holding the keys recovers it.
    pub fn bcast_encrypted(&mut self, root: usize, data: Vec<u32>) -> Vec<u32> {
        self.keys.advance();
        let mut buf = data;
        // XOR pad from the collective stream: same Eq. 3 machinery, keyed
        // per epoch — temporal safety applies to broadcasts too.
        let pad_base = self.keys.base_collective();
        if self.comm.rank() == root {
            let mut pad = vec![0u32; buf.len()];
            keystream_u32(self.keys.prf(), pad_base, 0, &mut pad);
            for (b, p) in buf.iter_mut().zip(&pad) {
                *b ^= *p;
            }
        }
        let mut out = self.comm.bcast(root, buf);
        // Non-roots learn the length only on arrival; pad afterwards.
        let mut pad = vec![0u32; out.len()];
        keystream_u32(self.keys.prf(), pad_base, 0, &mut pad);
        for (b, p) in out.iter_mut().zip(&pad) {
            *b ^= *p;
        }
        out
    }

    /// Encrypted gather to `root`: each rank's contribution is XOR-padded
    /// with its own per-rank stream (Eq. 3's noise), which the root — who
    /// knows every base through the registry-free trick below — cannot
    /// strip for ranks other than its neighbours; therefore gather pads
    /// with the *collective* stream at per-rank offsets instead, keeping
    /// Θ(1) keys. Offsets are `rank * len` so streams never overlap.
    pub fn gather_encrypted(&mut self, root: usize, data: Vec<u32>) -> Vec<Vec<u32>> {
        self.keys.advance();
        let len = data.len() as u64;
        let mut buf = data;
        let mut pad = vec![0u32; buf.len()];
        keystream_u32(
            self.keys.prf(),
            self.keys.base_collective(),
            self.comm.rank() as u64 * len,
            &mut pad,
        );
        for (b, p) in buf.iter_mut().zip(&pad) {
            *b ^= *p;
        }
        let gathered = self.comm.gather(root, buf);
        if self.comm.rank() != root {
            return gathered;
        }
        gathered
            .into_iter()
            .enumerate()
            .map(|(r, mut v)| {
                let mut pad = vec![0u32; v.len()];
                keystream_u32(
                    self.keys.prf(),
                    self.keys.base_collective(),
                    r as u64 * len,
                    &mut pad,
                );
                for (b, p) in v.iter_mut().zip(&pad) {
                    *b ^= *p;
                }
                v
            })
            .collect()
    }

    /// Encrypted scatter from `root` (§8): chunk `r` is padded with the
    /// collective stream at offset `r × len` (all chunks must share one
    /// length so offsets are unambiguous).
    pub fn scatter_encrypted(&mut self, root: usize, chunks: Vec<Vec<u32>>) -> Vec<u32> {
        self.keys.advance();
        let base = self.keys.base_collective();
        let chunks = if self.comm.rank() == root {
            let len = chunks.first().map_or(0, Vec::len);
            assert!(
                chunks.iter().all(|c| c.len() == len),
                "scatter_encrypted requires equal chunk lengths"
            );
            chunks
                .into_iter()
                .enumerate()
                .map(|(r, mut c)| {
                    let mut pad = vec![0u32; c.len()];
                    keystream_u32(self.keys.prf(), base, r as u64 * len as u64, &mut pad);
                    for (b, p) in c.iter_mut().zip(&pad) {
                        *b ^= *p;
                    }
                    c
                })
                .collect()
        } else {
            chunks
        };
        let mut mine = self.comm.scatter(root, chunks);
        let mut pad = vec![0u32; mine.len()];
        keystream_u32(
            self.keys.prf(),
            base,
            self.comm.rank() as u64 * mine.len() as u64,
            &mut pad,
        );
        for (b, p) in mine.iter_mut().zip(&pad) {
            *b ^= *p;
        }
        mine
    }

    /// Encrypted personalized all-to-all (§8). A compatibility shim over
    /// the engine's [`SecureComm::alltoall_with`], which owns the pad
    /// schedule (chunk from `s` to `d` rides the collective stream at
    /// offset `(s·P + d) × len`, every directed pair disjoint) as well as
    /// chunking, retries and HoMAC verification; this wrapper keeps the
    /// historical chunks-in/chunks-out `u32` signature.
    pub fn alltoall_encrypted(&mut self, chunks: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
        let world = self.comm.world();
        assert_eq!(chunks.len(), world, "need one chunk per rank");
        let len = chunks.first().map_or(0, Vec::len);
        assert!(
            chunks.iter().all(|c| c.len() == len),
            "alltoall_encrypted requires equal chunk lengths"
        );
        let flat: Vec<u32> = chunks.into_iter().flatten().collect();
        let mut scheme = IntSumScheme::<u32>::default();
        let out = self
            .alltoall_with(&mut scheme, &flat, EngineCfg::sync())
            .expect("plain alltoall over a healthy fabric cannot fail");
        if len == 0 {
            return vec![Vec::new(); world];
        }
        out.chunks(len).map(<[u32]>::to_vec).collect()
    }
}

/// One-to-one encrypted messaging (§8): a matrix of pairwise keys.
///
/// Each ordered pair `(src, dst)` shares a key derived from a master key
/// during the trusted initialization; every message advances a per-pair
/// sequence number feeding the PRF input, so identical payloads encrypt
/// differently (temporal safety for point-to-point). Per-rank key state is
/// Θ(N) — the cost the paper notes relative to the Θ(1) collectives.
pub struct SecureP2p {
    comm: Communicator,
    /// PRF per peer for sending (keyed k_{me,peer}) and receiving
    /// (keyed k_{peer,me}).
    send_prf: Vec<PrfCipher>,
    recv_prf: Vec<PrfCipher>,
    send_seq: HashMap<usize, u64>,
    recv_seq: HashMap<usize, u64>,
}

impl SecureP2p {
    /// Derive the pairwise matrix from a master key (the trusted
    /// initializer's entropy). All ranks must pass identical
    /// `master`/`backend`.
    pub fn new(comm: Communicator, master: u128, backend: Backend) -> SecureP2p {
        let master_prf = PrfCipher::new(backend, master).expect("backend available");
        let me = comm.rank() as u128;
        let key_for = |src: u128, dst: u128| {
            // k_{src,dst} = F_master(src || dst), a 128-bit pair key.
            master_prf.eval_block((src << 64) | dst)
        };
        let world = comm.world();
        let send_prf = (0..world)
            .map(|p| PrfCipher::new(backend, key_for(me, p as u128)).expect("available"))
            .collect();
        let recv_prf = (0..world)
            .map(|p| PrfCipher::new(backend, key_for(p as u128, me)).expect("available"))
            .collect();
        SecureP2p {
            comm,
            send_prf,
            recv_prf,
            send_seq: HashMap::new(),
            recv_seq: HashMap::new(),
        }
    }

    /// Space cost in keys — Θ(N), as §8 notes.
    pub fn key_count(&self) -> usize {
        self.send_prf.len() + self.recv_prf.len()
    }

    /// Send a u32 vector to `dst`, XOR-encrypted under the pair key with
    /// the current sequence number.
    pub fn send(&mut self, dst: usize, tag: u64, data: &[u32]) {
        let seq = self.send_seq.entry(dst).or_insert(0);
        let base = (*seq as u128) << 64;
        *seq += 1;
        let mut buf = data.to_vec();
        let mut pad = vec![0u32; buf.len()];
        keystream_u32(&self.send_prf[dst], base, 0, &mut pad);
        for (b, p) in buf.iter_mut().zip(&pad) {
            *b ^= *p;
        }
        self.comm.send(dst, tag, buf);
    }

    /// Receive and decrypt a u32 vector from `src`. Messages from one peer
    /// must be received in send order (MPI's non-overtaking rule keeps the
    /// sequence numbers aligned).
    pub fn recv(&mut self, src: usize, tag: u64) -> Vec<u32> {
        let seq = self.recv_seq.entry(src).or_insert(0);
        let base = (*seq as u128) << 64;
        *seq += 1;
        let mut buf = self.comm.recv::<u32>(src, tag);
        let mut pad = vec![0u32; buf.len()];
        keystream_u32(&self.recv_prf[src], base, 0, &mut pad);
        for (b, p) in buf.iter_mut().zip(&pad) {
            *b ^= *p;
        }
        buf
    }

    /// Encrypted atomic-style accumulate: ship an addend to the owner of a
    /// counter (the §8 one-to-one atomic pattern). The owner applies it
    /// with [`SecureP2p::drain_accumulate`].
    pub fn accumulate(&mut self, owner: usize, tag: u64, addend: u32) {
        self.send(owner, tag, &[addend]);
    }

    /// Owner side: receive one accumulate from `src` and fold it.
    pub fn drain_accumulate(&mut self, src: usize, tag: u64, counter: &mut u32) {
        let v = self.recv(src, tag);
        *counter = counter.wrapping_add(v[0]);
    }
}

/// XOR-pad reuse guard for the broadcast path: both IntXor and the bcast
/// pad derive from the collective stream, which would collide if a
/// broadcast and an XOR allreduce shared an epoch. Key progression before
/// every operation prevents that; this marker type exists to document the
/// invariant next to the code that relies on it.
#[allow(dead_code)]
struct PadDomainNote;

#[cfg(test)]
mod tests {
    use super::*;
    use hear_core::{Backend, CommKeys};
    use hear_mpi::Simulator;

    fn secure(comm: &Communicator, seed: u64) -> SecureComm {
        let keys = CommKeys::generate(comm.world(), seed, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        SecureComm::new(comm.clone(), keys)
    }

    #[test]
    fn logical_and_or_end_to_end() {
        let results = Simulator::new(3).run(|comm| {
            let mut sc = secure(comm, 1);
            // Element 0: all true; element 1: mixed; element 2: all false.
            let bits = [true, comm.rank() == 1, false];
            sc.allreduce_logical(&bits)
        });
        for r in &results {
            assert_eq!(*r, vec![(true, true), (true, false), (false, false)]);
        }
    }

    #[test]
    fn variance_end_to_end() {
        let results = Simulator::new(2).run(|comm| {
            let mut sc = secure(comm, 2);
            let samples = if comm.rank() == 0 {
                vec![1.0, -1.0]
            } else {
                vec![2.0, -2.0]
            };
            sc.allreduce_variance(&samples)
        });
        for (mean, var, n) in &results {
            assert_eq!(*n, 4);
            assert!(mean.abs() < 1e-4);
            assert!((var - 2.5).abs() < 1e-3, "var={var}");
        }
    }

    #[test]
    fn complex_sum_end_to_end() {
        let results = Simulator::new(2).run(|comm| {
            let mut sc = secure(comm, 3);
            let z = [(comm.rank() as f64 + 1.0, -1.5), (0.25, 0.75)];
            sc.allreduce_complex_sum(HfpFormat::fp32(2, 2), &z).unwrap()
        });
        for r in &results {
            assert!((r[0].0 - 3.0).abs() < 1e-4);
            assert!((r[0].1 + 3.0).abs() < 1e-4);
            assert!((r[1].0 - 0.5).abs() < 1e-4);
            assert!((r[1].1 - 1.5).abs() < 1e-4);
        }
    }

    #[test]
    fn reduce_to_each_root() {
        for root in 0..3 {
            let results = Simulator::new(3).run(move |comm| {
                let mut sc = secure(comm, 4);
                sc.reduce_sum_u32(root, &[comm.rank() as u32 + 1, 10])
            });
            for (rank, r) in results.iter().enumerate() {
                if rank == root {
                    assert_eq!(r.as_ref().unwrap(), &vec![6, 30]);
                } else {
                    assert!(r.is_none());
                }
            }
        }
    }

    #[test]
    fn bcast_encrypted_delivers_and_hides() {
        let results = Simulator::new(4).run(|comm| {
            let mut sc = secure(comm, 5);
            let payload = if comm.rank() == 1 {
                vec![0xDEAD_BEEF, 42]
            } else {
                vec![]
            };
            sc.bcast_encrypted(1, payload)
        });
        for r in &results {
            assert_eq!(*r, vec![0xDEAD_BEEF, 42]);
        }
    }

    #[test]
    fn gather_encrypted_reassembles_at_root() {
        let results = Simulator::new(3).run(|comm| {
            let mut sc = secure(comm, 6);
            sc.gather_encrypted(0, vec![comm.rank() as u32 * 11; 2])
        });
        assert_eq!(results[0], vec![vec![0, 0], vec![11, 11], vec![22, 22]]);
    }

    #[test]
    fn p2p_roundtrip_and_temporal_safety() {
        let results = Simulator::new(2).run(|comm| {
            let mut p2p = SecureP2p::new(comm.clone(), 0x77, Backend::best_available());
            assert_eq!(p2p.key_count(), 4);
            if comm.rank() == 0 {
                p2p.send(1, 1, &[7, 7, 7]);
                p2p.send(1, 1, &[7, 7, 7]); // same payload again
                vec![]
            } else {
                let a = p2p.recv(0, 1);
                let b = p2p.recv(0, 1);
                assert_eq!(a, vec![7, 7, 7]);
                assert_eq!(b, vec![7, 7, 7]);
                a
            }
        });
        assert_eq!(results[1], vec![7, 7, 7]);
    }

    #[test]
    fn p2p_wire_is_encrypted_and_differs_per_message() {
        // Observe the raw wire through a plain receiver: same plaintext,
        // two sends → two different ciphertexts, neither equal plaintext.
        let results = Simulator::new(2).run(|comm| {
            if comm.rank() == 0 {
                let mut p2p = SecureP2p::new(comm.clone(), 0x88, Backend::best_available());
                p2p.send(1, 2, &[1234, 5678]);
                p2p.send(1, 2, &[1234, 5678]);
                (vec![], vec![])
            } else {
                let w1 = comm.recv::<u32>(0, 2);
                let w2 = comm.recv::<u32>(0, 2);
                (w1, w2)
            }
        });
        let (w1, w2) = &results[1];
        assert_ne!(*w1, vec![1234, 5678], "wire must not carry plaintext");
        assert_ne!(w1, w2, "p2p temporal safety");
    }

    #[test]
    fn atomic_accumulate() {
        let results = Simulator::new(3).run(|comm| {
            let mut p2p = SecureP2p::new(comm.clone(), 0x99, Backend::best_available());
            if comm.rank() == 0 {
                let mut counter = 100u32;
                p2p.drain_accumulate(1, 3, &mut counter);
                p2p.drain_accumulate(2, 3, &mut counter);
                counter
            } else {
                p2p.accumulate(0, 3, comm.rank() as u32 * 10);
                0
            }
        });
        assert_eq!(results[0], 100 + 10 + 20);
    }
}

#[cfg(test)]
mod complex_prod_tests {
    use super::*;
    use hear_core::CommKeys;
    use hear_mpi::Simulator;

    #[test]
    fn complex_product_matches_reference() {
        let world = 4;
        let results = Simulator::new(world).run(move |comm| {
            let keys = CommKeys::generate(world, 21, Backend::best_available())
                .into_iter()
                .nth(comm.rank())
                .unwrap();
            let mut sc = SecureComm::new(comm.clone(), keys);
            // Per-rank factors with varied magnitude and phase.
            let r = comm.rank() as f64;
            let z = [(1.1 + 0.1 * r, 0.2 * r - 0.3), (0.8, -0.5 + 0.1 * r)];
            let got = sc.allreduce_complex_prod(&z).unwrap();
            // Plaintext reference through the same communicator.
            let reference =
                comm.allreduce(&z, |a, b| (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0));
            (got, reference)
        });
        for (got, reference) in &results {
            for (g, e) in got.iter().zip(reference) {
                let mag = (e.0 * e.0 + e.1 * e.1).sqrt().max(1e-9);
                assert!(
                    ((g.0 - e.0).powi(2) + (g.1 - e.1).powi(2)).sqrt() / mag < 1e-3,
                    "{g:?} vs {e:?}"
                );
            }
        }
    }

    #[test]
    fn rotation_composition() {
        // Multiplying unit vectors composes rotations: P ranks each rotate
        // by 2π/P; the product must come back to ~1+0i.
        let world = 6;
        let results = Simulator::new(world).run(move |comm| {
            let keys = CommKeys::generate(world, 22, Backend::best_available())
                .into_iter()
                .nth(comm.rank())
                .unwrap();
            let mut sc = SecureComm::new(comm.clone(), keys);
            let theta = std::f64::consts::TAU / world as f64;
            sc.allreduce_complex_prod(&[(theta.cos(), theta.sin())])
                .unwrap()
        });
        for r in &results {
            assert!((r[0].0 - 1.0).abs() < 1e-3, "{:?}", r[0]);
            assert!(r[0].1.abs() < 1e-3);
        }
    }
}

#[cfg(test)]
mod scatter_alltoall_tests {
    use super::*;
    use hear_core::CommKeys;
    use hear_mpi::Simulator;

    fn secure(comm: &Communicator, seed: u64) -> SecureComm {
        let keys = CommKeys::generate(comm.world(), seed, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        SecureComm::new(comm.clone(), keys)
    }

    #[test]
    fn scatter_encrypted_delivers() {
        let results = Simulator::new(4).run(|comm| {
            let mut sc = secure(comm, 31);
            let chunks = if comm.rank() == 2 {
                (0..4)
                    .map(|r| vec![r as u32 * 10, r as u32 * 10 + 1])
                    .collect()
            } else {
                Vec::new()
            };
            sc.scatter_encrypted(2, chunks)
        });
        for (r, got) in results.iter().enumerate() {
            assert_eq!(*got, vec![r as u32 * 10, r as u32 * 10 + 1]);
        }
    }

    #[test]
    fn alltoall_encrypted_transposes_and_hides() {
        let results = Simulator::new(3).run(|comm| {
            let mut sc = secure(comm, 32);
            let chunks: Vec<Vec<u32>> = (0..3)
                .map(|dst| vec![(comm.rank() * 10 + dst) as u32; 2])
                .collect();
            sc.alltoall_encrypted(chunks)
        });
        for (me, got) in results.iter().enumerate() {
            for (src, c) in got.iter().enumerate() {
                assert_eq!(*c, vec![(src * 10 + me) as u32; 2], "me={me} src={src}");
            }
        }
    }

    #[test]
    fn alltoall_wire_is_not_plaintext() {
        // Observe one raw chunk: send through the plain alltoall what the
        // encrypted path would have put on the wire, by comparing with the
        // decrypted result (indirect but sufficient: two runs with
        // different epochs must produce different wires for same data).
        let results = Simulator::new(2).run(|comm| {
            let mut sc = secure(comm, 33);
            let data: Vec<Vec<u32>> = vec![vec![7, 7], vec![7, 7]];
            let a = sc.alltoall_encrypted(data.clone());
            let b = sc.alltoall_encrypted(data);
            (a, b)
        });
        // Results decrypt identically across epochs (correctness)...
        assert_eq!(results[0].0, results[0].1);
        // ...even though the underlying wires differed (epoch advanced);
        // correctness across epochs is itself the regression signal here.
        assert_eq!(results[0].0[1], vec![7, 7]);
    }

    #[test]
    #[should_panic(expected = "equal chunk lengths")]
    fn ragged_chunks_rejected() {
        Simulator::new(2).run(|comm| {
            let mut sc = secure(comm, 34);
            let _ = sc.alltoall_encrypted(vec![vec![1], vec![2, 3]]);
        });
    }
}
