//! Page-aligned memory pool (paper §6, "Memory allocation").
//!
//! libhear pre-allocates a page-aligned pool for intermediate send-buffer
//! blocks: it avoids per-call `malloc` on the critical path (the
//! `mem_alloc` / `mem_free` phases visible in Fig. 4) and keeps buffers
//! page-aligned so the MPI layer's RDMA registration (memory pinning) can
//! be amortized.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::sync::{Mutex, MutexGuard, PoisonError};

pub const PAGE: usize = 4096;

/// A page-aligned byte buffer.
pub struct AlignedBuf {
    ptr: *mut u8,
    len: usize,
}

// The buffer is exclusively owned; the raw pointer is not shared.
unsafe impl Send for AlignedBuf {}

impl AlignedBuf {
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "zero-length pool blocks are useless");
        let layout = Layout::from_size_align(len, PAGE).expect("valid layout");
        // SAFETY: layout has non-zero size; allocation failure is checked.
        let ptr = unsafe { alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "pool allocation failed");
        AlignedBuf { ptr, len }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr is valid for len bytes for the lifetime of self.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: exclusive access through &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }

    /// View as a u32 lane buffer (the pool allocates page-aligned blocks,
    /// so alignment always holds).
    pub fn as_u32_mut(&mut self) -> &mut [u32] {
        debug_assert_eq!(self.ptr as usize % 4, 0);
        // SAFETY: page alignment ≥ 4; length truncated to whole lanes.
        unsafe { std::slice::from_raw_parts_mut(self.ptr as *mut u32, self.len / 4) }
    }

    pub fn as_u64_mut(&mut self) -> &mut [u64] {
        debug_assert_eq!(self.ptr as usize % 8, 0);
        // SAFETY: page alignment ≥ 8; length truncated to whole lanes.
        unsafe { std::slice::from_raw_parts_mut(self.ptr as *mut u64, self.len / 8) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(self.len, PAGE).expect("valid layout");
        // SAFETY: allocated with the same layout in `new`.
        unsafe { dealloc(self.ptr, layout) }
    }
}

/// A fixed-size pool of equally sized page-aligned blocks.
pub struct MemoryPool {
    block_bytes: usize,
    free: Mutex<Vec<AlignedBuf>>,
}

/// Lock ignoring poisoning: a panicking worker must not wedge the pool for
/// the surviving ranks (matches the `parking_lot` semantics this module
/// started with).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl MemoryPool {
    /// Pre-allocate `blocks` buffers of `block_bytes` each.
    pub fn new(block_bytes: usize, blocks: usize) -> Self {
        MemoryPool {
            block_bytes,
            free: Mutex::new((0..blocks).map(|_| AlignedBuf::new(block_bytes)).collect()),
        }
    }

    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Number of blocks currently available.
    pub fn available(&self) -> usize {
        lock_unpoisoned(&self.free).len()
    }

    /// Take a block; falls back to a fresh allocation when the pool is
    /// exhausted (the paper-accurate behaviour is to size the pool for the
    /// pipeline depth so this never happens on the hot path).
    pub fn take(&self) -> AlignedBuf {
        let reused = {
            let mut free = lock_unpoisoned(&self.free);
            let b = free.pop();
            if hear_telemetry::active() {
                hear_telemetry::incr(if b.is_some() {
                    hear_telemetry::Metric::PoolTakeReuse
                } else {
                    hear_telemetry::Metric::PoolTakeFresh
                });
                hear_telemetry::gauge_set(hear_telemetry::Gauge::PoolAvailable, free.len() as i64);
            }
            b
        };
        reused.unwrap_or_else(|| AlignedBuf::new(self.block_bytes))
    }

    /// Return a block to the pool.
    pub fn put(&self, buf: AlignedBuf) {
        assert_eq!(
            buf.len(),
            self.block_bytes,
            "foreign block returned to pool"
        );
        let mut free = lock_unpoisoned(&self.free);
        free.push(buf);
        if hear_telemetry::active() {
            hear_telemetry::incr(hear_telemetry::Metric::PoolPuts);
            hear_telemetry::gauge_set(hear_telemetry::Gauge::PoolAvailable, free.len() as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_page_aligned() {
        for len in [1usize, 64, 4096, 100_000] {
            let b = AlignedBuf::new(len);
            assert_eq!(b.as_slice().as_ptr() as usize % PAGE, 0, "len={len}");
            assert_eq!(b.len(), len);
        }
    }

    #[test]
    fn buffer_is_zeroed_and_writable() {
        let mut b = AlignedBuf::new(128);
        assert!(b.as_slice().iter().all(|&x| x == 0));
        b.as_mut_slice()[5] = 7;
        assert_eq!(b.as_slice()[5], 7);
        b.as_u32_mut()[0] = 0xdead_beef;
        assert_eq!(b.as_u32_mut()[0], 0xdead_beef);
        assert_eq!(b.as_u64_mut().len(), 16);
    }

    #[test]
    fn pool_reuses_blocks() {
        let pool = MemoryPool::new(8192, 2);
        assert_eq!(pool.available(), 2);
        let a = pool.take();
        let ptr_a = a.as_slice().as_ptr();
        assert_eq!(pool.available(), 1);
        pool.put(a);
        assert_eq!(pool.available(), 2);
        // LIFO reuse returns the same block.
        let b = pool.take();
        assert_eq!(b.as_slice().as_ptr(), ptr_a);
        pool.put(b);
    }

    #[test]
    fn pool_overflow_allocates_fresh() {
        let pool = MemoryPool::new(4096, 1);
        let a = pool.take();
        let b = pool.take(); // beyond capacity
        assert_eq!(b.len(), 4096);
        pool.put(a);
        pool.put(b);
        assert_eq!(pool.available(), 2);
    }

    #[test]
    #[should_panic(expected = "foreign block")]
    fn foreign_block_rejected() {
        let pool = MemoryPool::new(4096, 0);
        pool.put(AlignedBuf::new(8192));
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = std::sync::Arc::new(MemoryPool::new(4096, 4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = pool.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let mut b = p.take();
                        b.as_mut_slice()[0] = 1;
                        p.put(b);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(pool.available() >= 4);
    }
}
