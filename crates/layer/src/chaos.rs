//! Fault-plan hooks for this crate's private wire types.
//!
//! The fabric's fault injector mutates `Box<dyn Any>` payloads and only
//! knows the types it has corruptor/cloner hooks for; the built-ins
//! cover primitive vectors. This module teaches a
//! [`FaultPlan`] about the verified transport's [`Packet`] payloads, so
//! chaos suites can corrupt and duplicate §5.5 traffic: a flipped
//! ciphertext bit is caught by the digest check, a flipped digest lane or
//! tag by the HoMAC itself.

use crate::engine::Packet;
use hear_core::Hfp;
use hear_mpi::FaultPlan;
use std::any::Any;
use std::sync::Arc;

/// Arm `plan` with corruptors and cloners for the verified packet
/// payloads of the integer (`u32` wire) and float (`Hfp` wire) schemes.
pub fn with_packet_hooks(plan: FaultPlan) -> FaultPlan {
    plan.with_corruptor(Arc::new(corrupt_u32_packets))
        .with_cloner(Arc::new(clone_packets::<u32>))
        .with_corruptor(Arc::new(corrupt_hfp_packets))
        .with_cloner(Arc::new(clone_packets::<Hfp>))
}

/// Which packet the fault word singles out.
fn pick(len: usize, word: u64) -> Option<usize> {
    if len == 0 {
        None
    } else {
        Some((word as usize) % len)
    }
}

fn corrupt_u32_packets(payload: &mut dyn Any, word: u64) -> bool {
    let Some(v) = payload.downcast_mut::<Vec<Packet<u32>>>() else {
        return false;
    };
    if let Some(i) = pick(v.len(), word) {
        // The high bits choose the channel so a seed sweep exercises all
        // three detection paths.
        match (word >> 61) % 3 {
            0 => v[i].c ^= 1 << ((word >> 32) & 31),
            1 => v[i].d[0] ^= 1,
            _ => v[i].s[0] ^= 1,
        }
    }
    true
}

fn corrupt_hfp_packets(payload: &mut dyn Any, word: u64) -> bool {
    let Some(v) = payload.downcast_mut::<Vec<Packet<Hfp>>>() else {
        return false;
    };
    if let Some(i) = pick(v.len(), word) {
        match (word >> 61) % 3 {
            // An exponent bit-flip stays inside the `ew`-bit ring and
            // shifts the decoded value by a power of two — far past any
            // Table 2 tolerance.
            0 => v[i].c.exp ^= 1,
            1 => v[i].d[0] ^= 1,
            _ => v[i].s[0] ^= 1,
        }
    }
    true
}

fn clone_packets<W: Clone + Send + 'static>(
    payload: &(dyn Any + Send),
) -> Option<Box<dyn Any + Send>> {
    payload
        .downcast_ref::<Vec<Packet<W>>>()
        .map(|v| Box::new(v.clone()) as Box<dyn Any + Send>)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packets_u32(n: usize) -> Vec<Packet<u32>> {
        (0..n)
            .map(|i| Packet {
                c: i as u32,
                d: [i as u64; hear_core::DIGEST_LANES],
                s: [!(i as u64); hear_core::DIGEST_LANES],
            })
            .collect()
    }

    #[test]
    fn corruptor_flips_exactly_one_packet() {
        let clean = packets_u32(4);
        let mut dirty = clean.clone();
        assert!(corrupt_u32_packets(&mut dirty as &mut dyn Any, 0x7));
        let changed = clean
            .iter()
            .zip(&dirty)
            .filter(|(a, b)| a.c != b.c || a.d != b.d || a.s != b.s)
            .count();
        assert_eq!(changed, 1);
    }

    #[test]
    fn corruptor_rejects_foreign_payloads() {
        let mut other = vec![1u32, 2, 3];
        assert!(!corrupt_u32_packets(&mut other as &mut dyn Any, 0));
    }

    #[test]
    fn cloner_deep_copies() {
        let v = packets_u32(3);
        let boxed: Box<dyn Any + Send> = Box::new(v.clone());
        let copy = clone_packets::<u32>(boxed.as_ref()).expect("known type");
        let copy = copy.downcast::<Vec<Packet<u32>>>().expect("same type");
        assert_eq!(copy.len(), 3);
        assert!(v.iter().zip(copy.iter()).all(|(a, b)| a.c == b.c));
    }

    #[test]
    fn hooks_attach_to_a_plan() {
        // Debug output carries the hook counts: 2 custom corruptors and
        // 2 custom cloners on top of the seeded built-ins.
        let plan = with_packet_hooks(FaultPlan::seeded(7));
        let dbg = format!("{plan:?}");
        assert!(dbg.contains("corruptors"), "{dbg}");
    }

    #[test]
    fn single_uplink_corruption_heals_by_resend() {
        // The §5.5 resend succeeding end-to-end, deterministically. A
        // one-shot corruptor flips a ciphertext bit in the first packet
        // vector the injector offers — necessarily a rank→switch uplink,
        // since the switch can only start multicasting after all uplinks
        // arrived. The corrupted contribution poisons the aggregate for
        // every rank symmetrically, so all four fail the digest check on
        // the same block, all retry on the next attempt tag, and the
        // clean resend converges: every rank ends Ok and exact.
        use crate::engine::{EngineCfg, RetryPolicy};
        use crate::secure::{ReduceAlgo, SecureComm};
        use hear_core::{CommKeys, Homac, IntSumScheme};
        use hear_mpi::{SimConfig, Simulator};
        use hear_prf::Backend;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::time::Duration;

        const WORLD: usize = 4;
        let reg = hear_telemetry::Registry::new_enabled();
        let _g = reg.install(None);

        let hit = Arc::new(AtomicBool::new(false));
        let one_shot: hear_mpi::Corruptor = Arc::new({
            let hit = Arc::clone(&hit);
            move |payload: &mut dyn Any, _word: u64| {
                let Some(v) = payload.downcast_mut::<Vec<Packet<u32>>>() else {
                    return false;
                };
                if !hit.swap(true, Ordering::SeqCst) {
                    if let Some(p) = v.first_mut() {
                        p.c ^= 1;
                    }
                }
                true // later offers are recognised but left intact
            }
        });
        // corrupt_one_in(1) routes EVERY message through the corruptor
        // chain; the one-shot hook (tried first) makes exactly one flip.
        let plan =
            with_packet_hooks(FaultPlan::seeded(11).corrupt_one_in(1)).with_corruptor(one_shot);

        let cfg = SimConfig::default().with_switch(4).with_faults(plan);
        let results = Simulator::with_config(WORLD, cfg).run(|comm| {
            let keys = CommKeys::generate(WORLD, 0xBEEF, Backend::best_available())
                .into_iter()
                .nth(comm.rank())
                .unwrap();
            let homac = Homac::generate(0xBEEF ^ 0x5a5a, Backend::best_available());
            let mut sc = SecureComm::new(comm.clone(), keys).with_homac(homac);
            let data: Vec<u32> = (0..16).map(|j| j * 3 + comm.rank() as u32).collect();
            let ecfg = EngineCfg::blocked(16)
                .verified()
                .with_algo(ReduceAlgo::Switch)
                .with_retry(
                    RetryPolicy::retries(1).with_attempt_timeout(Duration::from_millis(500)),
                );
            let mut s = IntSumScheme::<u32>::default();
            sc.allreduce_with(&mut s, &data, ecfg)
        });
        let expected: Vec<u32> = (0..16)
            .map(|j| (0..WORLD as u32).map(|r| j * 3 + r).sum())
            .collect();
        for (rank, res) in results.iter().enumerate() {
            let got = res
                .as_ref()
                .unwrap_or_else(|e| panic!("rank {rank} failed instead of healing: {e}"));
            assert_eq!(got, &expected, "rank {rank}");
        }
        assert!(hit.load(Ordering::SeqCst), "the corruptor never fired");
        let retries = reg.counter(hear_telemetry::Metric::RetriesTotal);
        assert!(
            retries >= WORLD as u64,
            "expected every rank to retry once, counted {retries}"
        );
    }
}
