//! Arbitrary-precision binary floating point — the MPFR substitute.
//!
//! The paper measures HFP precision loss (Fig. 3) against reference sums
//! computed with MPFR at 1024 bits of precision. `BigFloat` provides the
//! same capability: a sign/magnitude binary float with a configurable
//! mantissa precision, correct round-to-nearest-even on every operation,
//! exact conversions from `f64`, and rounded conversion back.
//!
//! Value represented: `(-1)^sign × mantissa × 2^exp` with
//! `bit_len(mantissa) ≤ prec` after every rounding step.

use crate::biguint::BigUint;
use std::cmp::Ordering;

/// Default reference precision used by the Fig. 3 harness (matches the
/// paper's MPFR setting).
pub const REFERENCE_PREC: u32 = 1024;

#[derive(Clone, Debug)]
pub struct BigFloat {
    negative: bool,
    mant: BigUint,
    exp: i64,
    prec: u32,
}

impl BigFloat {
    pub fn zero(prec: u32) -> Self {
        BigFloat {
            negative: false,
            mant: BigUint::zero(),
            exp: 0,
            prec,
        }
    }

    pub fn is_zero(&self) -> bool {
        self.mant.is_zero()
    }

    pub fn prec(&self) -> u32 {
        self.prec
    }

    pub fn is_negative(&self) -> bool {
        self.negative && !self.is_zero()
    }

    /// Exact conversion: every finite `f64` is representable.
    /// Panics on NaN/infinity (HEAR itself also excludes them, §5.3.6).
    pub fn from_f64(v: f64, prec: u32) -> Self {
        assert!(v.is_finite(), "BigFloat::from_f64 requires a finite value");
        if v == 0.0 {
            return Self::zero(prec);
        }
        let bits = v.to_bits();
        let negative = bits >> 63 == 1;
        let biased = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mant, exp) = if biased == 0 {
            // Subnormal: value = frac × 2^-1074.
            (frac, -1074)
        } else {
            ((1u64 << 52) | frac, biased - 1075)
        };
        let mut out = BigFloat {
            negative,
            mant: BigUint::from_u64(mant),
            exp,
            prec,
        };
        out.round();
        out
    }

    pub fn from_u64(v: u64, prec: u32) -> Self {
        let mut out = BigFloat {
            negative: false,
            mant: BigUint::from_u64(v),
            exp: 0,
            prec,
        };
        out.round();
        out
    }

    /// Round the mantissa to `prec` bits, RTNE, adjusting the exponent.
    fn round(&mut self) {
        let len = self.mant.bit_len();
        if len <= self.prec as u64 {
            return;
        }
        let drop = len - self.prec as u64;
        let mut kept = self.mant.shr(drop);
        let round_bit = self.mant.bit(drop - 1);
        if round_bit {
            // Sticky: any set bit strictly below the round bit.
            let below_round = self.mant.sub(&self.mant.shr(drop - 1).shl(drop - 1));
            if !below_round.is_zero() || kept.bit(0) {
                kept = kept.add(&BigUint::one());
            }
        }
        self.exp += drop as i64;
        if kept.bit_len() > self.prec as u64 {
            // Carry out of the top bit: 0b111..1 + 1.
            kept = kept.shr(1);
            self.exp += 1;
        }
        self.mant = kept;
    }

    pub fn neg(&self) -> BigFloat {
        let mut out = self.clone();
        if !out.is_zero() {
            out.negative = !out.negative;
        }
        out
    }

    pub fn abs(&self) -> BigFloat {
        let mut out = self.clone();
        out.negative = false;
        out
    }

    /// Compare magnitudes only.
    fn cmp_mag(&self, other: &BigFloat) -> Ordering {
        if self.is_zero() || other.is_zero() {
            return self
                .is_zero()
                .cmp(&other.is_zero())
                .reverse()
                .then(Ordering::Equal);
        }
        // Compare by the exponent of the leading bit first.
        let top_a = self.exp + self.mant.bit_len() as i64;
        let top_b = other.exp + other.mant.bit_len() as i64;
        top_a.cmp(&top_b).then_with(|| {
            // Align and compare mantissas exactly.
            let shift_a = (self.exp - self.exp.min(other.exp)) as u64;
            let shift_b = (other.exp - self.exp.min(other.exp)) as u64;
            self.mant.shl(shift_a).cmp(&other.mant.shl(shift_b))
        })
    }

    pub fn add(&self, other: &BigFloat) -> BigFloat {
        let prec = self.prec.max(other.prec);
        if self.is_zero() {
            let mut o = other.clone();
            o.prec = prec;
            o.round();
            return o;
        }
        if other.is_zero() {
            let mut s = self.clone();
            s.prec = prec;
            s.round();
            return s;
        }
        let e = self.exp.min(other.exp);
        let ma = self.mant.shl((self.exp - e) as u64);
        let mb = other.mant.shl((other.exp - e) as u64);
        let (negative, mant) = if self.negative == other.negative {
            (self.negative, ma.add(&mb))
        } else {
            match ma.cmp(&mb) {
                Ordering::Greater => (self.negative, ma.sub(&mb)),
                Ordering::Less => (other.negative, mb.sub(&ma)),
                Ordering::Equal => (false, BigUint::zero()),
            }
        };
        let mut out = BigFloat {
            negative,
            mant,
            exp: e,
            prec,
        };
        out.round();
        out
    }

    pub fn sub(&self, other: &BigFloat) -> BigFloat {
        self.add(&other.neg())
    }

    pub fn mul(&self, other: &BigFloat) -> BigFloat {
        let prec = self.prec.max(other.prec);
        if self.is_zero() || other.is_zero() {
            return Self::zero(prec);
        }
        let mut out = BigFloat {
            negative: self.negative ^ other.negative,
            mant: self.mant.mul(&other.mant),
            exp: self.exp + other.exp,
            prec,
        };
        out.round();
        out
    }

    /// Division rounded to `prec` bits. Panics on division by zero.
    pub fn div(&self, other: &BigFloat) -> BigFloat {
        assert!(!other.is_zero(), "BigFloat division by zero");
        let prec = self.prec.max(other.prec);
        if self.is_zero() {
            return Self::zero(prec);
        }
        // Produce prec+2 quotient bits then round.
        let extra = prec as u64 + 2 + other.mant.bit_len();
        let num = self.mant.shl(extra);
        let (q, r) = num.div_rem(&other.mant);
        // Fold the inexact remainder into a sticky bit so RTNE is correct.
        let mut mant = q.shl(1);
        if !r.is_zero() {
            mant = mant.add(&BigUint::one());
        }
        let mut out = BigFloat {
            negative: self.negative ^ other.negative,
            mant,
            exp: self.exp - other.exp - extra as i64 - 1,
            prec,
        };
        out.round();
        out
    }

    /// Convert to `f64` with round-to-nearest (overflow saturates to ±inf).
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        // Round the mantissa to 53 bits first.
        let mut tmp = self.clone();
        tmp.prec = 53;
        tmp.round();
        let m = tmp.mant.to_u64().expect("53-bit mantissa fits u64") as f64;
        let sign = if tmp.negative { -1.0 } else { 1.0 };
        // Apply 2^exp in safe chunks to avoid intermediate overflow.
        let mut result = sign * m;
        let mut e = tmp.exp;
        while e > 512 {
            result *= f64::powi(2.0, 512);
            e -= 512;
        }
        while e < -512 {
            result *= f64::powi(2.0, -512);
            e += 512;
        }
        result * f64::powi(2.0, e as i32)
    }
}

impl PartialEq for BigFloat {
    fn eq(&self, other: &Self) -> bool {
        self.partial_cmp(other) == Some(Ordering::Equal)
    }
}

impl PartialOrd for BigFloat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        let ord = match (self.is_negative(), other.is_negative()) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => self.cmp_mag(other),
            (true, true) => self.cmp_mag(other).reverse(),
        };
        Some(ord)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bf(v: f64) -> BigFloat {
        BigFloat::from_f64(v, 256)
    }

    #[test]
    fn f64_roundtrip_exact() {
        for v in [
            0.0,
            1.0,
            -1.0,
            0.5,
            1.5,
            std::f64::consts::PI,
            -2.2e-308,
            1.7e308,
            5e-324, // subnormal
            f64::MIN_POSITIVE,
        ] {
            assert_eq!(bf(v).to_f64(), v, "roundtrip of {v}");
        }
    }

    #[test]
    fn add_exact_small() {
        assert_eq!(bf(1.5).add(&bf(2.25)).to_f64(), 3.75);
        assert_eq!(bf(1.0).add(&bf(-1.0)).to_f64(), 0.0);
        assert_eq!(bf(-3.0).add(&bf(-4.0)).to_f64(), -7.0);
        assert_eq!(bf(0.0).add(&bf(42.0)).to_f64(), 42.0);
    }

    #[test]
    fn add_is_exact_beyond_f64() {
        // 1 + 2^-200 is not representable in f64 but must be exact at 256 bits.
        let tiny = BigFloat {
            negative: false,
            mant: BigUint::one(),
            exp: -200,
            prec: 256,
        };
        let s = bf(1.0).add(&tiny);
        assert!(s > bf(1.0));
        assert_eq!(s.sub(&tiny).to_f64(), 1.0);
    }

    #[test]
    fn mul_and_div() {
        assert_eq!(bf(3.0).mul(&bf(4.0)).to_f64(), 12.0);
        assert_eq!(bf(-3.0).mul(&bf(4.0)).to_f64(), -12.0);
        assert_eq!(bf(1.0).div(&bf(4.0)).to_f64(), 0.25);
        assert_eq!(bf(10.0).div(&bf(-2.0)).to_f64(), -5.0);
        // 1/3 rounds to the nearest f64 for 1/3.
        assert_eq!(bf(1.0).div(&bf(3.0)).to_f64(), 1.0 / 3.0);
    }

    #[test]
    fn rounding_to_nearest_even() {
        // At prec=4, 0b10101 (21) rounds to 0b1010 << 1 (ties-to-even: 20... )
        let mut v = BigFloat {
            negative: false,
            mant: BigUint::from_u64(21),
            exp: 0,
            prec: 4,
        };
        v.round();
        // 21 = 10101b; keep 1010b, round bit 1, sticky 0, kept even → stays 1010b=10, exp += 1 → 20.
        assert_eq!(v.mant.to_u64(), Some(10));
        assert_eq!(v.exp, 1);

        // 0b10111 (23) → keep 1011 (11), round bit 1, sticky 1 → 12, exp 1 → 24.
        let mut v = BigFloat {
            negative: false,
            mant: BigUint::from_u64(23),
            exp: 0,
            prec: 4,
        };
        v.round();
        assert_eq!(v.mant.to_u64(), Some(12));
        assert_eq!(v.exp, 1);
    }

    #[test]
    fn rounding_carry_propagates() {
        // 0b11111 at prec 4: keep 1111, round 1, sticky 1 → 10000 → renormalize.
        let mut v = BigFloat {
            negative: false,
            mant: BigUint::from_u64(0b11111),
            exp: 0,
            prec: 4,
        };
        v.round();
        assert_eq!(v.mant.to_u64(), Some(0b1000));
        assert_eq!(v.exp, 2);
        assert_eq!(v.to_f64(), 32.0);
    }

    #[test]
    fn comparisons() {
        assert!(bf(1.0) < bf(2.0));
        assert!(bf(-2.0) < bf(-1.0));
        assert!(bf(-1.0) < bf(1.0));
        assert!(bf(0.0) == bf(-0.0));
        assert!(bf(1e300) > bf(1e299));
        assert!(bf(1.0) == bf(1.0));
    }

    #[test]
    fn long_sum_matches_integer_arithmetic() {
        // Sum of 1..=1000 is exact: 500500.
        let mut acc = BigFloat::zero(REFERENCE_PREC);
        for i in 1..=1000u64 {
            acc = acc.add(&BigFloat::from_u64(i, REFERENCE_PREC));
        }
        assert_eq!(acc.to_f64(), 500_500.0);
    }

    #[test]
    fn catastrophic_cancellation_is_exact() {
        // (1e16 + 1) - 1e16 == 1 exactly at high precision (f64 would lose it
        // only at 1e16+1 — use a harder case: 2^100 + 1 - 2^100).
        let big = BigFloat {
            negative: false,
            mant: BigUint::one(),
            exp: 100,
            prec: 256,
        };
        let one = bf(1.0);
        let r = big.add(&one).sub(&big);
        assert_eq!(r.to_f64(), 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = BigFloat::from_f64(f64::NAN, 64);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn finite_f64() -> impl Strategy<Value = f64> {
        any::<f64>().prop_filter("finite", |v| v.is_finite())
    }

    proptest! {
        #[test]
        fn roundtrip(v in finite_f64()) {
            prop_assert_eq!(BigFloat::from_f64(v, 64).to_f64(), v);
        }

        #[test]
        fn add_matches_f64_when_exact(a in -1000i64..1000, b in -1000i64..1000) {
            // Integer-valued adds are exact in both systems.
            let r = BigFloat::from_f64(a as f64, 128).add(&BigFloat::from_f64(b as f64, 128));
            prop_assert_eq!(r.to_f64(), (a + b) as f64);
        }

        #[test]
        fn mul_matches_f64_when_exact(a in -1000i64..1000, b in -1000i64..1000) {
            let r = BigFloat::from_f64(a as f64, 128).mul(&BigFloat::from_f64(b as f64, 128));
            prop_assert_eq!(r.to_f64(), (a * b) as f64);
        }

        #[test]
        fn sub_self_is_zero(v in finite_f64()) {
            let b = BigFloat::from_f64(v, 128);
            prop_assert!(b.sub(&b).is_zero());
        }

        #[test]
        fn div_inverts_mul(
            ma in 1.0f64..2.0, ea in -100i32..100, sa in any::<bool>(),
            mb in 1.0f64..2.0, eb in -100i32..100, sb in any::<bool>(),
        ) {
            let a = if sa { -ma } else { ma } * f64::powi(2.0, ea);
            let b = if sb { -mb } else { mb } * f64::powi(2.0, eb);
            let fa = BigFloat::from_f64(a, 256);
            let fb = BigFloat::from_f64(b, 256);
            let back = fa.mul(&fb).div(&fb);
            // Exact product then exact quotient recovers a to f64 precision.
            prop_assert_eq!(back.to_f64(), a);
        }

        #[test]
        fn ordering_matches_f64(a in finite_f64(), b in finite_f64()) {
            let fa = BigFloat::from_f64(a, 64);
            let fb = BigFloat::from_f64(b, 64);
            prop_assert_eq!(fa.partial_cmp(&fb), a.partial_cmp(&b));
        }
    }
}

impl BigFloat {
    /// Square root by Newton iteration (`x ← (x + a/x)/2`), seeded from the
    /// `f64` estimate; precision doubles per step, so ⌈log₂(prec/50)⌉+2
    /// iterations reach full precision. Panics on negative input.
    pub fn sqrt(&self) -> BigFloat {
        assert!(!self.is_negative(), "sqrt of a negative BigFloat");
        if self.is_zero() {
            return Self::zero(self.prec);
        }
        // Seed: sqrt of the f64 image, rescaled when out of f64 range.
        let top = self.exp + self.mant.bit_len() as i64;
        let mut x = if top.abs() < 900 {
            Self::from_f64(self.to_f64().sqrt(), self.prec)
        } else {
            // a ≈ 2^top → sqrt ≈ 2^(top/2).
            BigFloat {
                negative: false,
                mant: BigUint::one(),
                exp: top / 2,
                prec: self.prec,
            }
        };
        let half = BigFloat {
            negative: false,
            mant: BigUint::one(),
            exp: -1,
            prec: self.prec,
        };
        let steps = (self.prec as f64 / 50.0).log2().ceil().max(0.0) as usize + 2;
        for _ in 0..steps {
            x = self.div(&x).add(&x).mul(&half);
        }
        x
    }
}

#[cfg(test)]
mod sqrt_tests {
    use super::*;

    #[test]
    fn perfect_squares() {
        for v in [0.0f64, 1.0, 4.0, 9.0, 1024.0, 0.25] {
            let r = BigFloat::from_f64(v, 256).sqrt();
            assert_eq!(r.to_f64(), v.sqrt(), "sqrt({v})");
        }
    }

    #[test]
    fn agrees_with_f64_sqrt() {
        for v in [2.0f64, 3.0, 1e10, 1e-10, 123.456] {
            let r = BigFloat::from_f64(v, 256).sqrt().to_f64();
            assert_eq!(r, v.sqrt(), "sqrt({v})");
        }
    }

    #[test]
    fn high_precision_identity() {
        // sqrt(a)² must equal a to ~prec bits.
        let a = BigFloat::from_f64(7.0, 512);
        let r = a.sqrt();
        let back = r.mul(&r);
        let err = back.sub(&a).abs();
        // |err| ≤ a × 2^{-500}.
        let bound = a.mul(&BigFloat {
            negative: false,
            mant: BigUint::one(),
            exp: -500,
            prec: 512,
        });
        assert!(err < bound, "sqrt not converged to precision");
    }

    #[test]
    fn extreme_exponent_inputs() {
        // Beyond the f64 range: 2^2000.
        let a = BigFloat {
            negative: false,
            mant: BigUint::one(),
            exp: 2000,
            prec: 128,
        };
        let r = a.sqrt();
        let back = r.mul(&r);
        let rel = back.sub(&a).abs().div(&a);
        assert!(rel.to_f64() < 1e-30);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_rejected() {
        BigFloat::from_f64(-1.0, 64).sqrt();
    }
}
