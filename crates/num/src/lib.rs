//! # hear-num — exact arithmetic substrate
//!
//! The HEAR paper's precision study (Fig. 3) measures HFP against reference
//! results computed with MPFR at 1024-bit precision, and its Table 1
//! baselines (Paillier/RSA/ElGamal) require multi-precision modular
//! arithmetic (GMP in the original ecosystem). Neither library is available
//! offline, so this crate provides from-scratch substitutes:
//!
//! * [`BigUint`] / [`BigInt`] — limb-based integers with Knuth-D division,
//!   modular exponentiation, gcd and modular inverse,
//! * [`BigFloat`] — arbitrary-precision binary floats with correct
//!   round-to-nearest-even (the MPFR substitute),
//! * [`prime`] — Miller–Rabin testing and prime generation for the
//!   baseline cryptosystems.

pub mod bigfloat;
pub mod bigint;
pub mod biguint;
pub mod prime;

pub use bigfloat::{BigFloat, REFERENCE_PREC};
pub use bigint::{modinv, BigInt};
pub use biguint::BigUint;
pub use prime::{gen_prime, is_probable_prime, SplitMix64};
