//! Arbitrary-precision unsigned integers on 64-bit limbs (little-endian).
//!
//! This is the workhorse beneath [`crate::BigFloat`] (exact reference sums
//! for the Fig. 3 precision study) and the classical HE baselines
//! (Paillier/RSA/ElGamal modular exponentiation for Table 1). Only the
//! operations those consumers need are implemented, but each is implemented
//! completely: schoolbook multiplication, Knuth-D division, bit shifts,
//! modular exponentiation and gcd.

use std::cmp::Ordering;

/// An arbitrary-precision unsigned integer. Invariant: no trailing zero
/// limbs (the canonical representation of zero is an empty limb vector).
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut b = BigUint {
            limbs: vec![lo, hi],
        };
        b.normalize();
        b
    }

    /// Construct from little-endian limbs (normalizing).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut b = BigUint { limbs };
        b.normalize();
        b
    }

    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64) * 64 - top.leading_zeros() as u64,
        }
    }

    /// Test bit `i` (little-endian bit order).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / 64) as usize;
        limb < self.limbs.len() && (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// Subtraction; panics on underflow (callers compare first).
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(
            self.cmp(other) != Ordering::Less,
            "BigUint subtraction underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, o1) = self.limbs[i].overflowing_sub(b);
            let (d2, o2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (o1 as u64) + (o2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        BigUint::from_limbs(out)
    }

    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    pub fn mul_u64(&self, m: u64) -> BigUint {
        if m == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &a in &self.limbs {
            let cur = (a as u128) * (m as u128) + carry;
            out.push(cur as u64);
            carry = cur >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    pub fn shl(&self, bits: u64) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    pub fn shr(&self, bits: u64) -> BigUint {
        let limb_shift = (bits / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        BigUint::from_limbs(out)
    }

    /// Knuth algorithm D long division. Returns `(quotient, remainder)`.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self.cmp(divisor) == Ordering::Less {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0];
            let mut q = Vec::with_capacity(self.limbs.len());
            let mut rem = 0u128;
            for &l in self.limbs.iter().rev() {
                let cur = (rem << 64) | l as u128;
                q.push((cur / d as u128) as u64);
                rem = cur % d as u128;
            }
            q.reverse();
            return (BigUint::from_limbs(q), BigUint::from_u64(rem as u64));
        }

        // Normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as u64;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let mut un = u.limbs.clone();
        un.push(0); // u has m+n+1 limbs during the loop
        let vn = &v.limbs;
        let v_top = vn[n - 1];
        let v_next = vn[n - 2];

        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate q̂ from the top two limbs of the current remainder.
            let num = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = num / v_top as u128;
            let mut rhat = num % v_top as u128;
            while qhat >= 1 << 64 || qhat * v_next as u128 > ((rhat << 64) | un[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += v_top as u128;
                if rhat >= 1 << 64 {
                    break;
                }
            }
            // Multiply-subtract qhat * v from un[j..j+n+1].
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let t = un[i + j] as i128 - (p as u64) as i128 - borrow;
                un[i + j] = t as u64;
                borrow = if t < 0 { 1 } else { 0 };
            }
            let t = un[j + n] as i128 - carry as i128 - borrow;
            un[j + n] = t as u64;
            if t < 0 {
                // q̂ was one too large: add v back.
                qhat -= 1;
                let mut c = 0u128;
                for i in 0..n {
                    let s = un[i + j] as u128 + vn[i] as u128 + c;
                    un[i + j] = s as u64;
                    c = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(c as u64);
            }
            q[j] = qhat as u64;
        }
        let rem = BigUint::from_limbs(un[..n].to_vec()).shr(shift);
        (BigUint::from_limbs(q), rem)
    }

    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// Modular exponentiation by square-and-multiply.
    pub fn modpow(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero());
        if modulus.is_one() {
            return BigUint::zero();
        }
        let mut base = self.rem(modulus);
        let mut result = BigUint::one();
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = result.mul(&base).rem(modulus);
            }
            if i + 1 < exp.bit_len() {
                base = base.mul(&base).rem(modulus);
            }
        }
        result
    }

    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Parse a decimal string (test/display helper).
    pub fn from_dec_str(s: &str) -> Option<BigUint> {
        let mut out = BigUint::zero();
        for ch in s.bytes() {
            if !ch.is_ascii_digit() {
                return None;
            }
            out = out.mul_u64(10).add(&BigUint::from_u64((ch - b'0') as u64));
        }
        Some(out)
    }

    pub fn to_dec_string(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        let ten = BigUint::from_u64(10_000_000_000_000_000_000);
        while !cur.is_zero() {
            let (q, r) = cur.div_rem(&ten);
            digits.push(r.to_u64().unwrap());
            cur = q;
        }
        let mut s = digits.pop().unwrap().to_string();
        for d in digits.iter().rev() {
            s.push_str(&format!("{d:019}"));
        }
        s
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.limbs
            .len()
            .cmp(&other.limbs.len())
            .then_with(|| self.limbs.iter().rev().cmp(other.limbs.iter().rev()))
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::fmt::Debug for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BigUint({})", self.to_dec_string())
    }
}

impl std::fmt::Display for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_dec_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bu(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn basic_roundtrips() {
        assert!(BigUint::zero().is_zero());
        assert_eq!(bu(0).to_u64(), Some(0));
        assert_eq!(bu(u128::MAX).to_u128(), Some(u128::MAX));
        assert_eq!(BigUint::from_u64(5).to_u64(), Some(5));
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(bu(3).add(&bu(4)), bu(7));
        assert_eq!(bu(1 << 70).sub(&bu(1)).to_u128(), Some((1 << 70) - 1));
        let carry = bu(u128::MAX).add(&bu(1));
        assert_eq!(carry.bit_len(), 129);
        assert_eq!(carry.sub(&bu(1)), bu(u128::MAX));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        bu(1).sub(&bu(2));
    }

    #[test]
    fn mul_matches_u128() {
        for (a, b) in [(0u128, 5u128), (3, 4), (1 << 63, 1 << 63), (12345, 67890)] {
            assert_eq!(bu(a).mul(&bu(b)).to_u128().unwrap_or(0), a.wrapping_mul(b));
        }
        // Large: (2^127) * (2^127) = 2^254.
        let big = bu(1 << 127).mul(&bu(1 << 127));
        assert_eq!(big.bit_len(), 255);
    }

    #[test]
    fn shifts() {
        assert_eq!(bu(1).shl(130).shr(130), bu(1));
        assert_eq!(bu(0xff00).shr(8), bu(0xff));
        assert_eq!(bu(1).shl(64).to_u128(), Some(1 << 64));
        assert_eq!(bu(123).shl(0), bu(123));
        assert_eq!(bu(123).shr(0), bu(123));
        assert_eq!(bu(1).shr(1), bu(0));
    }

    #[test]
    fn div_rem_small() {
        let (q, r) = bu(100).div_rem(&bu(7));
        assert_eq!((q, r), (bu(14), bu(2)));
        let (q, r) = bu(5).div_rem(&bu(10));
        assert_eq!((q, r), (bu(0), bu(5)));
    }

    #[test]
    fn div_rem_multi_limb() {
        // a = 2^200 + 12345, b = 2^100 + 7.
        let a = bu(1).shl(200).add(&bu(12345));
        let b = bu(1).shl(100).add(&bu(7));
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r.cmp(&b) == Ordering::Less);
    }

    #[test]
    fn div_rem_knuth_add_back_case() {
        // Stress the rare "add back" branch with adversarial top limbs.
        let a = BigUint::from_limbs(vec![0, 0, 0x8000_0000_0000_0000, 0x7fff_ffff_ffff_ffff]);
        let b = BigUint::from_limbs(vec![1, 0, 0x8000_0000_0000_0000]);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    fn modpow_fermat() {
        // 2^(p-1) ≡ 1 mod p for prime p.
        let p = bu(1_000_000_007);
        let r = bu(2).modpow(&bu(1_000_000_006), &p);
        assert!(r.is_one());
        // mod 1 is always 0.
        assert!(bu(5).modpow(&bu(3), &BigUint::one()).is_zero());
        // 0^0 = 1 by convention of square-and-multiply.
        assert!(bu(0).modpow(&bu(0), &bu(7)).is_one());
    }

    #[test]
    fn modpow_large_modulus() {
        // (2^64)^2 mod (2^100 + 3).
        let m = bu(1).shl(100).add(&bu(3));
        let r = bu(1 << 63).mul_u64(2).modpow(&bu(2), &m);
        let expect = bu(1).shl(128).rem(&m);
        assert_eq!(r, expect);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(bu(12).gcd(&bu(18)), bu(6));
        assert_eq!(bu(17).gcd(&bu(31)), bu(1));
        assert_eq!(bu(0).gcd(&bu(5)), bu(5));
    }

    #[test]
    fn decimal_roundtrip() {
        let s = "123456789012345678901234567890123456789";
        let v = BigUint::from_dec_str(s).unwrap();
        assert_eq!(v.to_dec_string(), s);
        assert_eq!(BigUint::zero().to_dec_string(), "0");
        assert!(BigUint::from_dec_str("12a").is_none());
    }

    #[test]
    fn ordering() {
        assert!(bu(5) < bu(6));
        assert!(bu(1 << 100) > bu(u64::MAX as u128));
        assert_eq!(bu(42).cmp(&bu(42)), Ordering::Equal);
    }

    #[test]
    fn bits() {
        let v = bu(0b1011);
        assert_eq!(v.bit_len(), 4);
        assert!(v.bit(0) && v.bit(1) && !v.bit(2) && v.bit(3) && !v.bit(100));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn bu(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    proptest! {
        #[test]
        fn add_commutes_with_u128(a in any::<u64>(), b in any::<u64>()) {
            let s = bu(a as u128).add(&bu(b as u128));
            prop_assert_eq!(s.to_u128(), Some(a as u128 + b as u128));
        }

        #[test]
        fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            let p = bu(a as u128).mul(&bu(b as u128));
            prop_assert_eq!(p.to_u128(), Some(a as u128 * b as u128));
        }

        #[test]
        fn div_rem_invariant(a in any::<u128>(), b in 1u128..) {
            let (q, r) = bu(a).div_rem(&bu(b));
            prop_assert_eq!(q.mul(&bu(b)).add(&r), bu(a));
            prop_assert!(r < bu(b));
        }

        #[test]
        fn div_rem_invariant_multilimb(
            a in proptest::collection::vec(any::<u64>(), 1..8),
            b in proptest::collection::vec(any::<u64>(), 1..5),
        ) {
            let a = BigUint::from_limbs(a);
            let b = BigUint::from_limbs(b);
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert_eq!(q.mul(&b).add(&r), a);
            prop_assert!(r < b);
        }

        #[test]
        fn shl_shr_roundtrip(a in any::<u128>(), s in 0u64..200) {
            prop_assert_eq!(bu(a).shl(s).shr(s), bu(a));
        }

        #[test]
        fn modpow_matches_naive(b in 0u64..1000, e in 0u64..24, m in 2u64..10_000) {
            let expect = (0..e).fold(1u128, |acc, _| acc * b as u128 % m as u128);
            let got = bu(b as u128).modpow(&bu(e as u128), &bu(m as u128));
            prop_assert_eq!(got.to_u128(), Some(expect % m as u128));
        }
    }
}
