//! Probabilistic prime generation (Miller–Rabin) for the classical HE
//! baselines (Paillier and RSA need random primes; ElGamal needs a safe
//! prime). A small deterministic SplitMix64 generator keeps this crate
//! dependency-free and the baseline benchmarks reproducible.

use crate::biguint::BigUint;

/// Deterministic 64-bit generator (SplitMix64). Not cryptographic — the
/// baselines exist to measure *cost*, not to protect data.
#[derive(Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (rejection sampling on the top bits).
    pub fn below(&mut self, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero());
        let bits = bound.bit_len();
        let limbs = bits.div_ceil(64) as usize;
        let top_mask = if bits.is_multiple_of(64) {
            u64::MAX
        } else {
            (1u64 << (bits % 64)) - 1
        };
        loop {
            let mut v: Vec<u64> = (0..limbs).map(|_| self.next_u64()).collect();
            *v.last_mut().unwrap() &= top_mask;
            let candidate = BigUint::from_limbs(v);
            if candidate < *bound {
                return candidate;
            }
        }
    }
}

/// Miller–Rabin primality test with `rounds` random bases.
pub fn is_probable_prime(n: &BigUint, rounds: u32, rng: &mut SplitMix64) -> bool {
    if let Some(small) = n.to_u64() {
        if small < 2 {
            return false;
        }
        for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
            if small == p {
                return true;
            }
            if small % p == 0 {
                return false;
            }
        }
    } else {
        // Quick trial division by small primes.
        for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
            if n.rem(&BigUint::from_u64(p)).is_zero() {
                return false;
            }
        }
    }
    let one = BigUint::one();
    let two = BigUint::from_u64(2);
    let n_minus_1 = n.sub(&one);
    // n-1 = d * 2^r with d odd.
    let mut d = n_minus_1.clone();
    let mut r = 0u64;
    while d.is_even() {
        d = d.shr(1);
        r += 1;
    }
    'witness: for _ in 0..rounds {
        // Base in [2, n-2].
        let a = rng.below(&n_minus_1.sub(&two)).add(&two);
        let mut x = a.modpow(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..r.saturating_sub(1) {
            x = x.modpow(&two, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generate a random probable prime with exactly `bits` bits.
pub fn gen_prime(bits: u64, rng: &mut SplitMix64) -> BigUint {
    assert!(bits >= 2);
    loop {
        let mut candidate = rng.below(&BigUint::one().shl(bits));
        // Force the top bit (exact bit length) and the bottom bit (odd).
        candidate = candidate
            .add(&BigUint::one().shl(bits - 1))
            .rem(&BigUint::one().shl(bits));
        if candidate.bit_len() != bits {
            candidate = candidate.add(&BigUint::one().shl(bits - 1));
        }
        if candidate.is_even() {
            candidate = candidate.add(&BigUint::one());
        }
        if candidate.bit_len() == bits && is_probable_prime(&candidate, 16, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_primes_and_composites() {
        let mut rng = SplitMix64::new(1);
        for p in [2u64, 3, 5, 7, 97, 65537, 1_000_000_007, (1 << 61) - 1] {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), 16, &mut rng),
                "{p} is prime"
            );
        }
        for c in [
            1u64,
            4,
            9,
            100,
            65536,
            1_000_000_006,
            561, /* Carmichael */
            6601,
        ] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 16, &mut rng),
                "{c} is composite"
            );
        }
    }

    #[test]
    fn large_known_prime() {
        // 2^89 - 1 is a Mersenne prime.
        let p = BigUint::one().shl(89).sub(&BigUint::one());
        let mut rng = SplitMix64::new(2);
        assert!(is_probable_prime(&p, 12, &mut rng));
        // 2^67 - 1 is famously composite (193707721 × 761838257287).
        let c = BigUint::one().shl(67).sub(&BigUint::one());
        assert!(!is_probable_prime(&c, 12, &mut rng));
    }

    #[test]
    fn generated_primes_have_requested_size() {
        let mut rng = SplitMix64::new(42);
        for bits in [16u64, 32, 64, 128, 256] {
            let p = gen_prime(bits, &mut rng);
            assert_eq!(p.bit_len(), bits);
            assert!(!p.is_even());
        }
    }

    #[test]
    fn below_is_uniformish_and_in_range() {
        let mut rng = SplitMix64::new(7);
        let bound = BigUint::from_u64(1000);
        let mut seen_high = false;
        for _ in 0..200 {
            let v = rng.below(&bound);
            assert!(v < bound);
            if v > BigUint::from_u64(500) {
                seen_high = true;
            }
        }
        assert!(seen_high, "sampler should cover the upper half");
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
