//! Signed arbitrary-precision integers: a sign wrapper over [`BigUint`]
//! providing exactly what the modular-inverse computation (extended Euclid)
//! and the HoMAC arithmetic need.

use crate::biguint::BigUint;
use std::cmp::Ordering;

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BigInt {
    /// `false` = non-negative. Zero is always non-negative.
    negative: bool,
    mag: BigUint,
}

impl BigInt {
    pub fn zero() -> Self {
        BigInt {
            negative: false,
            mag: BigUint::zero(),
        }
    }

    pub fn from_biguint(mag: BigUint) -> Self {
        BigInt {
            negative: false,
            mag,
        }
    }

    pub fn from_i128(v: i128) -> Self {
        BigInt {
            negative: v < 0,
            mag: BigUint::from_u128(v.unsigned_abs()),
        }
    }

    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    pub fn is_negative(&self) -> bool {
        self.negative && !self.mag.is_zero()
    }

    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    pub fn neg(&self) -> BigInt {
        if self.mag.is_zero() {
            self.clone()
        } else {
            BigInt {
                negative: !self.negative,
                mag: self.mag.clone(),
            }
        }
    }

    pub fn add(&self, other: &BigInt) -> BigInt {
        match (self.is_negative(), other.is_negative()) {
            (false, false) => BigInt {
                negative: false,
                mag: self.mag.add(&other.mag),
            },
            (true, true) => BigInt {
                negative: true,
                mag: self.mag.add(&other.mag),
            },
            (false, true) => match self.mag.cmp(&other.mag) {
                Ordering::Less => BigInt {
                    negative: true,
                    mag: other.mag.sub(&self.mag),
                },
                _ => BigInt {
                    negative: false,
                    mag: self.mag.sub(&other.mag),
                },
            },
            (true, false) => match other.mag.cmp(&self.mag) {
                Ordering::Less => BigInt {
                    negative: true,
                    mag: self.mag.sub(&other.mag),
                },
                _ => BigInt {
                    negative: false,
                    mag: other.mag.sub(&self.mag),
                },
            },
        }
    }

    pub fn sub(&self, other: &BigInt) -> BigInt {
        self.add(&other.neg())
    }

    pub fn mul(&self, other: &BigInt) -> BigInt {
        let mag = self.mag.mul(&other.mag);
        BigInt {
            negative: !mag.is_zero() && (self.negative ^ other.negative),
            mag,
        }
    }

    /// Reduce into `[0, m)`.
    pub fn rem_euclid(&self, m: &BigUint) -> BigUint {
        let r = self.mag.rem(m);
        if self.is_negative() && !r.is_zero() {
            m.sub(&r)
        } else {
            r
        }
    }
}

/// Modular inverse of `a` modulo `m` via the extended Euclidean algorithm.
/// Returns `None` when `gcd(a, m) != 1`.
pub fn modinv(a: &BigUint, m: &BigUint) -> Option<BigUint> {
    if m.is_zero() || m.is_one() {
        return None;
    }
    let mut r0 = BigInt::from_biguint(m.clone());
    let mut r1 = BigInt::from_biguint(a.rem(m));
    let mut t0 = BigInt::zero();
    let mut t1 = BigInt::from_i128(1);
    while !r1.is_zero() {
        let (q, _) = r0.magnitude().div_rem(r1.magnitude());
        let q = BigInt::from_biguint(q);
        let r2 = r0.sub(&q.mul(&r1));
        let t2 = t0.sub(&q.mul(&t1));
        r0 = r1;
        r1 = r2;
        t0 = t1;
        t1 = t2;
    }
    if r0.magnitude().is_one() {
        Some(t0.rem_euclid(m))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bu(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn signed_arithmetic() {
        let a = BigInt::from_i128(-5);
        let b = BigInt::from_i128(3);
        assert_eq!(a.add(&b), BigInt::from_i128(-2));
        assert_eq!(a.sub(&b), BigInt::from_i128(-8));
        assert_eq!(a.mul(&b), BigInt::from_i128(-15));
        assert_eq!(a.mul(&a), BigInt::from_i128(25));
        assert_eq!(a.neg(), BigInt::from_i128(5));
        assert!(BigInt::zero().neg() == BigInt::zero());
    }

    #[test]
    fn rem_euclid_negative() {
        assert_eq!(BigInt::from_i128(-1).rem_euclid(&bu(7)), bu(6));
        assert_eq!(BigInt::from_i128(-14).rem_euclid(&bu(7)), bu(0));
        assert_eq!(BigInt::from_i128(15).rem_euclid(&bu(7)), bu(1));
    }

    #[test]
    fn modinv_small() {
        // 3 * 5 = 15 ≡ 1 mod 7.
        assert_eq!(modinv(&bu(3), &bu(7)), Some(bu(5)));
        // Even numbers are not invertible mod even modulus.
        assert_eq!(modinv(&bu(4), &bu(8)), None);
        assert_eq!(modinv(&bu(1), &bu(2)), Some(bu(1)));
        assert_eq!(modinv(&bu(5), &BigUint::one()), None);
    }

    #[test]
    fn modinv_large_prime() {
        let p = bu((1u128 << 61) - 1); // Mersenne prime 2^61-1
        for a in [2u128, 3, 12345, (1 << 60) + 7] {
            let inv = modinv(&bu(a), &p).unwrap();
            assert!(bu(a).mul(&inv).rem(&p).is_one());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn add_matches_i128(a in -(1i128<<90)..(1i128<<90), b in -(1i128<<90)..(1i128<<90)) {
            let r = BigInt::from_i128(a).add(&BigInt::from_i128(b));
            prop_assert_eq!(r, BigInt::from_i128(a + b));
        }

        #[test]
        fn mul_matches_i128(a in -(1i128<<60)..(1i128<<60), b in -(1i128<<60)..(1i128<<60)) {
            let r = BigInt::from_i128(a).mul(&BigInt::from_i128(b));
            prop_assert_eq!(r, BigInt::from_i128(a * b));
        }

        #[test]
        fn modinv_is_inverse(a in 1u64.., p in proptest::sample::select(vec![101u64, 65537, 1_000_000_007])) {
            let a = BigUint::from_u64(a % p);
            prop_assume!(!a.is_zero());
            let p = BigUint::from_u64(p);
            let inv = modinv(&a, &p).unwrap();
            prop_assert!(a.mul(&inv).rem(&p).is_one());
        }
    }
}
