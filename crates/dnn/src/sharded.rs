//! ZeRO-style encrypted sharded data-parallel training — *measured*, not
//! modeled.
//!
//! The analytic proxies in the crate root reproduce Fig. 9's simulated
//! iteration times; this module runs the real thing at small scale: a
//! data-parallel SGD step whose communication is the factored ring —
//!
//! 1. **reduce-scatter** the gradients (encrypted, homomorphically
//!    combined): each rank ends up with the fully reduced gradients of
//!    the parameter shard it owns;
//! 2. **local update** of the owned shard only — optimizer state is
//!    sharded, the ZeRO-1 partitioning;
//! 3. **allgather** the updated shard (encrypted, bit-exact cells) so
//!    every rank rebuilds the full parameter replica.
//!
//! Step timings are wall-clock measurements of the actual engine calls
//! over the actual transport, exposed per phase in [`StepStats`].

use hear_core::{FloatSumScheme, HfpFormat};
use hear_layer::{ChunkMode, EngineCfg, EngineError, SecureComm};
use std::time::{Duration, Instant};

/// Wall-clock breakdown of one sharded step (measured, not modeled).
#[derive(Debug, Clone, Copy, Default)]
pub struct StepStats {
    /// The encrypted gradient reduce-scatter.
    pub reduce_scatter: Duration,
    /// The local optimizer update on the owned shard.
    pub local_update: Duration,
    /// The encrypted parameter allgather.
    pub allgather: Duration,
}

impl StepStats {
    pub fn total(&self) -> Duration {
        self.reduce_scatter + self.local_update + self.allgather
    }

    /// Accumulate another step's timings (for averaging over a run).
    pub fn accumulate(&mut self, other: &StepStats) {
        self.reduce_scatter += other.reduce_scatter;
        self.local_update += other.local_update;
        self.allgather += other.allgather;
    }
}

/// A ZeRO-1-style sharded SGD optimizer over an encrypted communicator.
///
/// Every rank holds the full parameter replica (needed for the forward
/// and backward passes) but *owns* — and updates — only its
/// [`SecureComm::shard_bounds`] slice. Gradients are averaged via the
/// float-scheme reduce-scatter; parameters return via the lossless
/// allgather, so replicas stay bit-identical across ranks.
pub struct ShardedSgd {
    params: Vec<f64>,
    lr: f64,
    scheme: FloatSumScheme,
    verified: bool,
}

impl ShardedSgd {
    /// `params` is the initial full replica (identical on every rank —
    /// the caller's responsibility, as in any data-parallel setup).
    pub fn new(params: Vec<f64>, lr: f64) -> ShardedSgd {
        ShardedSgd {
            params,
            lr,
            // γ=2 is the cancelling-noise addition layout; fp64 keeps the
            // quantisation at Table 2's "minor" level.
            scheme: FloatSumScheme::new(HfpFormat::fp64(2, 2)),
            verified: false,
        }
    }

    /// Verify both collectives with HoMAC (requires the communicator to
    /// carry a MAC key via `with_homac`).
    pub fn verified(mut self) -> ShardedSgd {
        self.verified = true;
        self
    }

    /// The current full replica.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// One synchronous data-parallel step: `grads` is this rank's local
    /// gradient of the full parameter vector; the update applies the
    /// gradient *mean* across ranks. Returns the measured per-phase
    /// wall-clock times.
    pub fn step(&mut self, sc: &mut SecureComm, grads: &[f64]) -> Result<StepStats, EngineError> {
        assert_eq!(
            grads.len(),
            self.params.len(),
            "gradient and parameter vectors must match"
        );
        // Sync chunking: the reduce-scatter share must be this rank's one
        // contiguous global chunk for the shard layout to be meaningful.
        let cfg = if self.verified {
            EngineCfg::sync().verified()
        } else {
            EngineCfg::sync()
        };
        debug_assert!(matches!(cfg.chunk, ChunkMode::Sync));
        let mut stats = StepStats::default();

        let t = Instant::now();
        let shard_grads = sc.reduce_scatter_with(&mut self.scheme, grads, cfg)?;
        stats.reduce_scatter = t.elapsed();

        let t = Instant::now();
        let (lo, hi) = sc.shard_bounds(self.params.len());
        debug_assert_eq!(shard_grads.len(), hi - lo);
        let scale = self.lr / sc.world() as f64;
        let shard: Vec<f64> = self.params[lo..hi]
            .iter()
            .zip(&shard_grads)
            .map(|(p, g)| p - scale * g)
            .collect();
        stats.local_update = t.elapsed();

        let t = Instant::now();
        let gathered = sc.allgather_with(&mut self.scheme, &shard, cfg)?;
        stats.allgather = t.elapsed();

        // The allgather layout is rank-contiguous and the shard bounds
        // are the per-rank prefix partition, so the gathered vector *is*
        // the updated replica.
        debug_assert_eq!(gathered.len(), self.params.len());
        self.params = gathered;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hear_core::{Backend, CommKeys, Homac};
    use hear_mpi::Simulator;

    const WORLD: usize = 4;
    /// Not divisible by 4: shard sizes are 10, 9, 9, 9.
    const N: usize = 37;
    const LR: f64 = 0.05;
    /// Table 2 classes the FP γ=2 addition layout's lossiness as
    /// "minor" — the matrix tests bound it at 1e-4 relative per
    /// reduction; three accumulating steps stay within a few of those.
    const TOL: f64 = 5e-4;

    fn grad(rank: usize, step: usize, j: usize) -> f64 {
        ((rank * 31 + step * 7 + j) as f64 * 0.13).sin() * 0.8
    }

    fn plaintext_reference(steps: usize) -> Vec<f64> {
        let mut params: Vec<f64> = (0..N).map(|j| (j as f64 * 0.21).cos()).collect();
        for step in 0..steps {
            for (j, p) in params.iter_mut().enumerate() {
                let mean: f64 = (0..WORLD).map(|r| grad(r, step, j)).sum::<f64>() / WORLD as f64;
                *p -= LR * mean;
            }
        }
        params
    }

    fn run_encrypted(steps: usize, verified: bool) -> Vec<(Vec<f64>, StepStats)> {
        Simulator::new(WORLD).run(move |comm| {
            let keys = CommKeys::generate(WORLD, 0x5A3D, Backend::best_available())
                .into_iter()
                .nth(comm.rank())
                .unwrap();
            let homac = Homac::generate(0x5A3E, Backend::best_available());
            let mut sc = SecureComm::new(comm.clone(), keys).with_homac(homac);
            let init: Vec<f64> = (0..N).map(|j| (j as f64 * 0.21).cos()).collect();
            let mut opt = ShardedSgd::new(init, LR);
            if verified {
                opt = opt.verified();
            }
            let mut sum = StepStats::default();
            for step in 0..steps {
                let grads: Vec<f64> = (0..N).map(|j| grad(comm.rank(), step, j)).collect();
                let stats = opt.step(&mut sc, &grads).unwrap();
                sum.accumulate(&stats);
            }
            (opt.params().to_vec(), sum)
        })
    }

    #[test]
    fn sharded_step_matches_plaintext_sgd_across_four_ranks() {
        let expected = plaintext_reference(3);
        let results = run_encrypted(3, false);
        let reference = &results[0].0;
        for (rank, (params, stats)) in results.iter().enumerate() {
            // Replicas are bit-identical across ranks: the allgather cells
            // are lossless, so every rank decodes the same shard bits.
            for (a, b) in params.iter().zip(reference) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "replica divergence on rank {rank}"
                );
            }
            for (j, (got, want)) in params.iter().zip(&expected).enumerate() {
                let scale = want.abs().max(1.0);
                assert!(
                    (got - want).abs() / scale < TOL,
                    "rank {rank} param {j}: encrypted {got} vs plaintext {want}"
                );
            }
            // Timings are measured: the communication phases actually ran.
            assert!(stats.reduce_scatter > Duration::ZERO, "rank {rank}");
            assert!(stats.allgather > Duration::ZERO, "rank {rank}");
            assert!(stats.total() >= stats.local_update, "rank {rank}");
        }
    }

    #[test]
    fn verified_sharded_step_matches_too() {
        let expected = plaintext_reference(2);
        let results = run_encrypted(2, true);
        for (rank, (params, _)) in results.iter().enumerate() {
            for (j, (got, want)) in params.iter().zip(&expected).enumerate() {
                let scale = want.abs().max(1.0);
                assert!(
                    (got - want).abs() / scale < TOL,
                    "rank {rank} param {j}: encrypted {got} vs plaintext {want}"
                );
            }
        }
    }
}
