//! # hear-dnn — distributed DNN training proxy workloads (paper §7.2)
//!
//! Fig. 9 reports *simulated* relative iteration times of four distributed
//! training proxy workloads under libhear. This crate reproduces that
//! methodology: each workload is a per-iteration communication/compute
//! trace — a gradient allreduce (MPI_FLOAT, size proportional to the
//! parameter count), plus HEAR-unaffected traffic (MPI_Alltoall for
//! DLRM's embedding exchange, point-to-point pipeline traffic for GPT-3)
//! and the compute phase. The allreduce cost comes from the `hear-net`
//! ring model; HEAR adds the float-scheme encrypt/decrypt cost, which in
//! the blocking SGD loop of the paper's Fig. 9 is *not* overlapped with
//! communication (the paper notes the overhead "could be eliminated by
//! further overlapping computation … with non-blocking HEAR
//! communication").

pub mod sharded;

use hear_net::{ring_allreduce_time, Allocation, CryptoRates, Machine};

/// One distributed-training proxy workload.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    pub name: &'static str,
    pub nodes: usize,
    pub ppn: usize,
    /// Gradient allreduce volume per iteration, bytes (FP32 parameters).
    pub allreduce_bytes: f64,
    /// Number of allreduce calls the volume is split over (bucketing).
    pub allreduce_calls: usize,
    /// Per-iteration communication that HEAR does not touch (alltoall,
    /// halo exchanges, pipeline p2p), seconds.
    pub other_comm: f64,
    /// Per-iteration compute time, seconds.
    pub compute: f64,
}

impl Workload {
    pub fn ranks(&self) -> usize {
        self.nodes * self.ppn
    }

    fn allocation(&self, machine: Machine) -> Allocation {
        Allocation {
            machine,
            nodes: self.nodes,
            ppn: self.ppn,
        }
    }
}

/// The paper's four proxy models with their Fig. 9 rank layouts.
/// Parameter volumes follow the public model sizes (ResNet-152: 60.2 M
/// params; DLRM dense tower ~30 M; CosmoFlow ~8 M conv parameters; GPT-3
/// with hybrid parallelism reduces ~10 M-parameter shards per group);
/// compute/other-comm splits are set to the workloads' published
/// communication fractions.
pub fn paper_workloads() -> [Workload; 4] {
    [
        Workload {
            name: "ResNet-152",
            nodes: 8,
            ppn: 32,
            allreduce_bytes: 60.2e6 * 4.0,
            allreduce_calls: 4,
            other_comm: 0.0, // "communication consists of only Allreduce"
            compute: 0.30,
        },
        Workload {
            name: "DLRM",
            nodes: 8,
            ppn: 32,
            allreduce_bytes: 30.0e6 * 4.0,
            allreduce_calls: 2,
            other_comm: 0.45, // embedding alltoall
            compute: 0.40,
        },
        Workload {
            name: "CosmoFlow",
            nodes: 8,
            ppn: 32,
            allreduce_bytes: 8.0e6 * 4.0,
            allreduce_calls: 1,
            other_comm: 0.05, // halo exchange
            compute: 0.32,
        },
        Workload {
            name: "GPT3",
            nodes: 48,
            ppn: 8,
            allreduce_bytes: 10.0e6 * 4.0,
            allreduce_calls: 1,
            other_comm: 0.45, // pipeline p2p + tensor-parallel traffic
            compute: 0.55,
        },
    ]
}

/// The paper's float-path crypto rates: the auto-vectorized AES float
/// encoder is "an order of magnitude faster than the Aries NIC bandwidth
/// of 0.347 GB/s/core" (§6) — ~3.5 GB/s/core.
pub fn float_crypto_paper() -> CryptoRates {
    CryptoRates {
        enc_bps: 3.5e9,
        dec_bps: 3.5e9,
        per_call: 0.3e-6,
    }
}

/// Simulated time of one training iteration.
pub fn iteration_time(w: &Workload, machine: Machine, crypto: Option<&CryptoRates>) -> f64 {
    let alloc = w.allocation(machine);
    let per_call_bytes = w.allreduce_bytes / w.allreduce_calls as f64;
    // Native reduction time (the network part is identical under HEAR —
    // zero ciphertext inflation for the FP32 γ=0 layout is the paper's
    // Fig. 9 configuration).
    let ar_native: f64 =
        ring_allreduce_time(&alloc, per_call_bytes, None) * w.allreduce_calls as f64;
    let mut t = w.compute + w.other_comm + ar_native;
    if let Some(c) = crypto {
        // Blocking MPI_Allreduce in the SGD loop: encrypt + decrypt run
        // serially with the reduction (no overlap in the Fig. 9 model).
        let eff = c.effective_at_ppn(&machine, w.ppn);
        t += w.allreduce_bytes * (1.0 / eff.enc_bps + 1.0 / eff.dec_bps)
            + c.per_call * w.allreduce_calls as f64;
    }
    t
}

/// Relative execution time with HEAR, normalized to without (the Fig. 9
/// bar heights: >1.0 means overhead).
pub fn relative_time(w: &Workload, machine: Machine, crypto: &CryptoRates) -> f64 {
    iteration_time(w, machine, Some(crypto)) / iteration_time(w, machine, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratios() -> Vec<(&'static str, f64)> {
        let machine = Machine::piz_daint();
        let crypto = float_crypto_paper();
        paper_workloads()
            .iter()
            .map(|w| (w.name, relative_time(w, machine, &crypto)))
            .collect()
    }

    #[test]
    fn random_workloads_have_positive_bounded_overhead() {
        // Random workload perturbations from the testkit PRNG: HEAR's
        // relative time must stay > 1 (crypto is never free) and the
        // absolute overhead must never exceed the serial encrypt+decrypt
        // bound (it is added un-overlapped in the Fig. 9 model).
        let machine = Machine::piz_daint();
        let crypto = float_crypto_paper();
        let mut rng = hear_testkit::TestRng::seed_from_u64(0xd22);
        for _ in 0..16 {
            let w = Workload {
                name: "random",
                nodes: rng.gen_range(2usize..=16),
                ppn: rng.gen_range(1usize..=36),
                allreduce_bytes: rng.gen_range(1.0e6f64..500.0e6),
                allreduce_calls: rng.gen_range(1usize..=8),
                other_comm: rng.gen_range(0.0f64..0.2),
                compute: rng.gen_range(0.01f64..1.0),
            };
            let base = iteration_time(&w, machine, None);
            let hear = iteration_time(&w, machine, Some(&crypto));
            assert!(base > 0.0 && hear > base, "{w:?}");
            let eff = crypto.effective_at_ppn(&machine, w.ppn);
            let bound = w.allreduce_bytes * (1.0 / eff.enc_bps + 1.0 / eff.dec_bps)
                + crypto.per_call * w.allreduce_calls as f64;
            assert!(hear - base <= bound * 1.0001, "{w:?}");
        }
    }

    #[test]
    fn all_overheads_are_modest_and_positive() {
        for (name, r) in ratios() {
            assert!(r > 1.0, "{name}: HEAR cannot be free ({r})");
            assert!(r < 1.6, "{name}: overhead implausibly large ({r})");
        }
    }

    #[test]
    fn ordering_matches_paper() {
        // Fig. 9: ResNet-152 (131.2%) > DLRM (117.3%) > CosmoFlow (111.3%)
        // > GPT3 (103.1%).
        let r: std::collections::HashMap<_, _> = ratios().into_iter().collect();
        assert!(r["ResNet-152"] > r["DLRM"], "{r:?}");
        assert!(r["DLRM"] > r["CosmoFlow"], "{r:?}");
        assert!(r["CosmoFlow"] > r["GPT3"], "{r:?}");
    }

    #[test]
    fn magnitudes_near_paper_values() {
        let r: std::collections::HashMap<_, _> = ratios().into_iter().collect();
        let paper = [
            ("ResNet-152", 1.312),
            ("DLRM", 1.173),
            ("CosmoFlow", 1.113),
            ("GPT3", 1.031),
        ];
        for (name, expect) in paper {
            let got = r[name];
            assert!(
                (got - expect).abs() < 0.10,
                "{name}: modeled {got:.3} vs paper {expect:.3}"
            );
        }
    }

    #[test]
    fn resnet_is_allreduce_only() {
        let w = paper_workloads()[0];
        assert_eq!(w.other_comm, 0.0);
        assert_eq!(w.ranks(), 256);
        let gpt = paper_workloads()[3];
        assert_eq!(gpt.ranks(), 384);
        assert_eq!((gpt.nodes, gpt.ppn), (48, 8));
    }

    #[test]
    fn faster_crypto_shrinks_overhead() {
        let machine = Machine::piz_daint();
        let w = paper_workloads()[0];
        let slow = relative_time(&w, machine, &float_crypto_paper());
        let fast = relative_time(
            &w,
            machine,
            &CryptoRates {
                enc_bps: 50e9,
                dec_bps: 50e9,
                per_call: 0.0,
            },
        );
        assert!(fast < slow);
    }
}
