//! Quickstart: the intuitive HEAR walkthrough of the paper's Fig. 1.
//!
//! Three ranks sum a small integer vector. Each rank encrypts by shifting
//! its values along the ring `Z_{2^32}` with PRF-derived noise; the
//! (untrusted) network folds the ciphertexts; decryption strips rank 0's
//! residual noise. Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hear::core::{Backend, CommKeys, IntSum, Scratch};
use hear::layer::SecureComm;
use hear::mpi::Simulator;

fn main() {
    const WORLD: usize = 3;
    println!("== HEAR quickstart: encrypted Allreduce over {WORLD} ranks ==\n");

    // --- Part 1: the mechanics, spelled out (Fig. 1) -----------------------
    let keys = CommKeys::generate(WORLD, 0x5eed, Backend::best_available());
    let mut scratch = Scratch::default();
    let inputs: [Vec<u32>; WORLD] = [vec![1, 5], vec![3, 8], vec![2, 4]];

    println!("plaintexts per rank: {inputs:?}");
    let mut agg = vec![0u32; 2];
    for (rank, keys) in keys.iter().enumerate() {
        let mut ct = inputs[rank].clone();
        IntSum::encrypt_in_place(keys, 0, &mut ct, &mut scratch);
        println!("rank {rank} sends ciphertext   {ct:?}");
        for (a, c) in agg.iter_mut().zip(&ct) {
            *a = a.wrapping_add(*c); // what the switch does — no keys needed
        }
    }
    println!("network aggregate (cipher) {agg:?}");
    IntSum::decrypt_in_place(&keys[0], 0, &mut agg, &mut scratch);
    println!("decrypted sums             {agg:?}  (expected [6, 17])\n");
    assert_eq!(agg, vec![6, 17]);

    // --- Part 2: the same thing through the libhear layer ------------------
    println!("-- via SecureComm (the libhear interposition layer) --");
    let results = Simulator::new(WORLD).run(|comm| {
        let keys = CommKeys::generate(WORLD, 42, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let mut secure = SecureComm::new(comm.clone(), keys);
        // The application-facing call: looks exactly like MPI_Allreduce.
        let ints = secure.allreduce_sum_i32(&[comm.rank() as i32, -10]);
        let floats = secure
            .allreduce_float_sum(hear::core::HfpFormat::fp32(2, 2), &[0.5, 1.25])
            .unwrap();
        (ints, floats)
    });
    for (rank, (ints, floats)) in results.iter().enumerate() {
        println!("rank {rank}: int sum = {ints:?}, float sum = {floats:?}");
        assert_eq!(*ints, vec![3, -30]);
        assert!((floats[0] - 1.5).abs() < 1e-4);
        assert!((floats[1] - 3.75).abs() < 1e-4);
    }
    println!("\nOK: every byte that crossed the (simulated) wire was encrypted.");

    // With HEAR_TRACE=1, dump the collected spans/metrics (chrome-trace
    // JSON, Prometheus text, JSON snapshot) under HEAR_TRACE_OUT.
    if let Some(paths) = hear::telemetry::dump_if_env() {
        for p in paths {
            println!("telemetry written to {}", p.display());
        }
    }
}
