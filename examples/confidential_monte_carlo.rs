//! Confidential scientific computing: distributed Monte-Carlo estimation
//! with secret per-rank sample counts.
//!
//! A classic HPC kernel: every rank shoots random points into the unit
//! square and the cluster estimates π from the global hit ratio. The hit
//! counters are integers, so the lossless IND-CPA integer SUM scheme
//! (Eq. 1) applies — the reduction is bit-exact under encryption. The
//! example also shows a variance computation through Σx and Σx² (the
//! §5.4 pattern: preprocess locally in the secure environment, reduce
//! with one supported operation), and an encrypted fixed-point reduction.
//!
//! ```sh
//! cargo run --release --example confidential_monte_carlo
//! ```

use hear::core::{Backend, CommKeys, FixedCodec};
use hear::layer::SecureComm;
use hear::mpi::Simulator;

const WORLD: usize = 6;
const SHOTS_PER_RANK: u64 = 200_000;

fn main() {
    println!("== confidential Monte-Carlo π over {WORLD} ranks ==");
    let estimates = Simulator::new(WORLD).run(|comm| {
        let keys = CommKeys::generate(WORLD, 0xCAFE, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let mut secure = SecureComm::new(comm.clone(), keys);

        // Local sampling (xorshift; seeded per rank).
        let mut state = 0x1234_5678_9abc_def0u64 ^ ((comm.rank() as u64 + 1) << 32);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as f64 / u64::MAX as f64
        };
        let mut hits = 0u64;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for _ in 0..SHOTS_PER_RANK {
            let (x, y) = (next(), next());
            let r2 = x * x + y * y;
            if r2 <= 1.0 {
                hits += 1;
            }
            sum += r2;
            sum_sq += r2 * r2;
        }

        // 1) Bit-exact encrypted integer reduction of the hit counters.
        let totals = secure.allreduce_sum_u64(&[hits, SHOTS_PER_RANK]);
        let pi = 4.0 * totals[0] as f64 / totals[1] as f64;

        // 2) Variance of r² across the whole cluster via Σx, Σx² — two
        //    values in one encrypted fixed-point reduction (§5.2, §5.4).
        let codec = FixedCodec::new(20);
        let moments = secure.allreduce_fixed_sum(codec, &[sum, sum_sq]);
        let n = (WORLD as u64 * SHOTS_PER_RANK) as f64;
        let mean = moments[0] / n;
        let var = moments[1] / n - mean * mean;

        (pi, mean, var, totals[0])
    });

    let (pi, mean, var, hits) = estimates[0];
    // All ranks agree bit-for-bit on the integer totals.
    assert!(estimates.iter().all(|e| e.3 == hits));
    println!("global hits           : {hits}");
    println!("π estimate            : {pi:.5}   (true 3.14159)");
    println!("E[r²] over the square : {mean:.5}   (true 2/3 ≈ 0.66667)");
    println!("Var[r²]               : {var:.5}");
    assert!(
        (pi - std::f64::consts::PI).abs() < 0.01,
        "π estimate off: {pi}"
    );
    assert!((mean - 2.0 / 3.0).abs() < 0.005);
    assert!(var > 0.0 && var < 1.0);
    println!("\nOK: counters and moments were reduced without ever leaving\nthe secure environment in plaintext.");
}
