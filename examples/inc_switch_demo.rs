//! What the network actually sees: the in-network compute boundary.
//!
//! This example builds the radix-4 switch tree explicitly, sends the same
//! plaintext from two ranks, and prints the ciphertexts passing the
//! switch: they differ across ranks (global safety), across vector slots
//! (local safety), and across consecutive Allreduce calls (temporal
//! safety) — while the decrypted results stay exact. It then contrasts
//! HEAR with the insecure plaintext INC that state-of-the-art systems
//! use.
//!
//! ```sh
//! cargo run --release --example inc_switch_demo
//! ```

use hear::core::{Backend, CommKeys, IntSum, Scratch};
use hear::mpi::{SimConfig, Simulator, SwitchTopology};

const WORLD: usize = 8;

fn main() {
    println!("== the INC trust boundary, made visible ==\n");

    // The switch tree the simulator builds: radix 4 over 8 ranks.
    let topo = SwitchTopology::build(WORLD, 4, WORLD);
    println!(
        "switch tree: {} leaves, {} nodes, depth {} (radix {})",
        topo.leaves,
        topo.nodes,
        topo.depth(),
        topo.radix
    );
    println!("rank → leaf map: {:?}\n", topo.leaf_of_rank);

    let results = Simulator::with_config(WORLD, SimConfig::default().with_switch(4)).run(|comm| {
        let mut keys = CommKeys::generate(WORLD, 0xD00D, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let mut scratch = Scratch::default();

        // Every rank contributes the SAME plaintext — the worst case for
        // an eavesdropper comparing wires.
        let plain = vec![7u32, 7, 7, 7];

        let mut observed = Vec::new();
        let mut sums = Vec::new();
        for _call in 0..2 {
            keys.advance();
            let mut ct = plain.clone();
            IntSum::encrypt_in_place(&keys, 0, &mut ct, &mut scratch);
            observed.push(ct.clone());
            // The switch tree reduces ciphertexts only.
            let mut agg = comm.allreduce_inc(&ct, |a: &u32, b: &u32| a.wrapping_add(*b));
            IntSum::decrypt_in_place(&keys, 0, &mut agg, &mut scratch);
            sums.push(agg);
        }
        (observed, sums)
    });

    println!("what the switch saw from ranks 0 and 1 (same plaintext [7,7,7,7]):");
    for (rank, res) in results.iter().enumerate().take(2) {
        for (call, ct) in res.0.iter().enumerate() {
            println!("  rank {rank}, call {call}: {ct:?}");
        }
    }

    // Safety checks across the collected wires.
    let r0c0 = &results[0].0[0];
    let r1c0 = &results[1].0[0];
    assert_ne!(r0c0, r1c0, "global safety: ranks must differ");
    assert_ne!(
        &results[0].0[0], &results[0].0[1],
        "temporal safety: calls must differ"
    );
    let distinct: std::collections::HashSet<u32> = r0c0.iter().copied().collect();
    assert_eq!(distinct.len(), 4, "local safety: slots must differ");

    // And yet, the arithmetic is exact.
    for (rank, (_, sums)) in results.iter().enumerate() {
        for s in sums {
            assert_eq!(*s, vec![56, 56, 56, 56], "rank {rank}");
        }
    }
    println!("\ndecrypted result on every rank, both calls: [56, 56, 56, 56] ✓");

    // The contrast: what today's INC (SHArP & friends) exposes.
    println!("\n-- the state-of-the-art alternative: plaintext INC --");
    let plain_results =
        Simulator::with_config(WORLD, SimConfig::default().with_switch(4)).run(|comm| {
            // The switch sees the user's data verbatim.
            comm.allreduce_inc(&[7u32, 7, 7, 7], |a, b| a.wrapping_add(*b))
        });
    println!(
        "the switch saw: [7, 7, 7, 7] from every rank (fully readable); result {:?}",
        plain_results[0]
    );
    println!("\nHEAR closes exactly this gap.");
}
