//! Distributed SGD gradient averaging with confidential gradients — the
//! paper's motivating deep-learning workload (§7.2).
//!
//! Eight ranks train a tiny linear regression model in a data-parallel
//! loop. Every iteration averages the per-rank gradients with an
//! encrypted float Allreduce (Eq. 7 HFP scheme) carried by the in-network
//! switch tree, so neither the switch nor an eavesdropper learns anything
//! about the gradients — which are well known to leak training data.
//!
//! ```sh
//! cargo run --release --example secure_gradient_averaging
//! ```

use hear::core::{Backend, CommKeys, HfpFormat};
use hear::layer::{ReduceAlgo, SecureComm};
use hear::mpi::{SimConfig, Simulator};

const WORLD: usize = 8;
const DIM: usize = 16;
const LOCAL_SAMPLES: usize = 32;
const EPOCHS: usize = 250;
const LR: f64 = 0.25;

/// Ground-truth weights the ranks should collectively recover.
fn truth(i: usize) -> f64 {
    (i as f64 * 0.37).sin() * 2.0
}

/// Deterministic per-rank synthetic dataset: y = w·x (+ tiny noise).
fn dataset(rank: usize) -> Vec<(Vec<f64>, f64)> {
    let mut state = (rank as u64 + 1) * 0x9e37_79b9;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    (0..LOCAL_SAMPLES)
        .map(|_| {
            let x: Vec<f64> = (0..DIM).map(|_| next()).collect();
            let y: f64 = x.iter().enumerate().map(|(i, xi)| truth(i) * xi).sum();
            (x, y)
        })
        .collect()
}

fn main() {
    println!("== confidential data-parallel SGD over {WORLD} ranks ==");
    let cfg = SimConfig::default().with_switch(4); // INC switch tree, radix 4
    let final_losses = Simulator::with_config(WORLD, cfg).run(|comm| {
        let keys = CommKeys::generate(WORLD, 7, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        // Gradients ride the INC switch — encrypted, as HEAR intends.
        let mut secure = SecureComm::new(comm.clone(), keys).with_algo(ReduceAlgo::Switch);
        let data = dataset(comm.rank());
        let mut w = [0.0f64; DIM];
        let mut last_loss = f64::INFINITY;
        for epoch in 0..EPOCHS {
            // Local gradient of the squared loss.
            let mut grad = vec![0.0f64; DIM];
            let mut loss = 0.0;
            for (x, y) in &data {
                let pred: f64 = w.iter().zip(x).map(|(wi, xi)| wi * xi).sum();
                let err = pred - y;
                loss += err * err;
                for (g, xi) in grad.iter_mut().zip(x) {
                    *g += 2.0 * err * xi / LOCAL_SAMPLES as f64;
                }
            }
            // Encrypted gradient averaging (the Allreduce of distributed
            // SGD). FP32 layout with γ=2 — the paper's accuracy-friendly
            // setting.
            let summed = secure
                .allreduce_float_sum(HfpFormat::fp32(2, 2), &grad)
                .expect("gradients are finite");
            for (wi, g) in w.iter_mut().zip(&summed) {
                *wi -= LR * g / WORLD as f64;
            }
            last_loss = loss / LOCAL_SAMPLES as f64;
            if comm.rank() == 0 && epoch % 50 == 0 {
                println!("epoch {epoch:3}: rank-0 local loss {last_loss:.6}");
            }
        }
        // All ranks must have converged to the shared optimum.
        let weight_err: f64 = (0..DIM)
            .map(|i| (w[i] - truth(i)).powi(2))
            .sum::<f64>()
            .sqrt();
        (last_loss, weight_err)
    });
    for (rank, (loss, werr)) in final_losses.iter().enumerate() {
        assert!(*loss < 1e-2, "rank {rank} did not converge: loss {loss}");
        assert!(*werr < 0.15, "rank {rank} weights off by {werr}");
    }
    println!(
        "converged: final rank-0 loss {:.2e}, weight error {:.2e}",
        final_losses[0].0, final_losses[0].1
    );
    println!("every gradient crossed the switch tree encrypted (HFP, Eq. 7).");
}
