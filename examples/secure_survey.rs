//! Confidential multi-site survey aggregation — the §5.4 derived-operation
//! toolkit in one program.
//!
//! Hospitals (ranks) hold sensitive per-site measurements. Without ever
//! revealing a site's data to the network, the consortium computes:
//!
//! * cluster-wide mean and variance of a biomarker (Σx/Σx² preprocessing),
//! * unanimous/any-site alarm flags (AND/OR via summation encoding),
//! * exact patient counts (lossless integer SUM),
//! * a coordinator-only detailed tally (encrypted MPI_Reduce),
//! * plus the one thing HEAR *refuses*: the maximum reading — with the
//!   paper's security rationale printed instead of a wrong answer.
//!
//! ```sh
//! cargo run --release --example secure_survey
//! ```

use hear::core::{Backend, CommKeys, MpiOp};
use hear::layer::SecureComm;
use hear::mpi::Simulator;

const SITES: usize = 5;

/// Deterministic synthetic biomarker panel per site.
fn site_data(rank: usize) -> Vec<f64> {
    (0..120)
        .map(|i| {
            let x = (rank * 120 + i) as f64;
            4.2 + (x * 0.37).sin() * 0.8 + (x * 0.011).cos() * 0.3
        })
        .collect()
}

fn main() {
    println!("== confidential {SITES}-site survey ==\n");
    let reports = Simulator::new(SITES).run(|comm| {
        let keys = CommKeys::generate(SITES, 0x50C1A1, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let mut sc = SecureComm::new(comm.clone(), keys);
        let data = site_data(comm.rank());

        // 1) Mean/variance across every patient at every site.
        let (mean, var, n) = sc.allreduce_variance(&data);

        // 2) Alarm flags: [any site above threshold?, all sites above?]
        let site_max = data.iter().cloned().fold(f64::MIN, f64::max);
        let flags = sc.allreduce_logical(&[site_max > 5.0, site_max > 4.5]);

        // 3) Exact patient counts (and a per-category breakdown).
        let high = data.iter().filter(|v| **v > 4.5).count() as u64;
        let counts = sc.allreduce_sum_u64(&[data.len() as u64, high]);

        // 4) Coordinator-only detailed tally (site 0 is the coordinator).
        let buckets: Vec<u32> = (0..8)
            .map(|b| {
                data.iter()
                    .filter(|v| ((**v - 3.0) * 2.0) as usize == b)
                    .count() as u32
            })
            .collect();
        let tally = sc.reduce_sum_u32(0, &buckets);

        (mean, var, n, flags, counts, tally)
    });

    let (mean, var, n, flags, counts, tally) = &reports[0];
    println!("patients (exact, lossless int SUM) : {}", counts[0]);
    println!("patients above 4.5                 : {}", counts[1]);
    println!("biomarker mean / variance          : {mean:.4} / {var:.4}  (n = {n})");
    println!(
        "alarm flags (OR, AND)              : any>5.0 = {}, all>4.5 = {}",
        flags[0].0, flags[1].1
    );
    println!(
        "coordinator bucket tally           : {:?}",
        tally.as_ref().unwrap()
    );

    // Cross-check against the pooled plaintext (which only this demo can
    // do — in production no one holds the pooled data).
    let pooled: Vec<f64> = (0..SITES).flat_map(site_data).collect();
    let pmean: f64 = pooled.iter().sum::<f64>() / pooled.len() as f64;
    assert_eq!(*n, 600);
    assert!((mean - pmean).abs() < 1e-3);
    assert_eq!(counts[0], 600);
    for r in &reports[1..] {
        assert_eq!(r.4, *counts, "all sites agree on the exact counters");
    }

    // 5) The operation HEAR refuses, with its reason.
    println!("\nrequesting MPI_MAX of the biomarker…");
    match SecureComm::check_op(MpiOp::Max) {
        Ok(_) => unreachable!(),
        Err(reason) => println!("refused: {reason}"),
    }
    println!("\nOK: statistics computed; no site's data ever crossed the wire in plaintext.");
}
