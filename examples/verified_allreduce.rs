//! Result verification with HoMACs (paper §5.5): catching a malicious
//! in-network reducer.
//!
//! HE is malleable — a compromised switch can perturb ciphertexts and the
//! sum still "decrypts". This example runs an encrypted, *tagged*
//! Allreduce where every ciphertext word travels with a homomorphic MAC;
//! an honest reduction verifies, and three kinds of tampering (bit flip,
//! element swap, replay of a stale aggregate) are all rejected.
//!
//! ```sh
//! cargo run --release --example verified_allreduce
//! ```

use hear::core::{Backend, CommKeys, Homac, IntSum, Scratch};
use hear::mpi::Simulator;

const WORLD: usize = 4;

fn main() {
    println!("== HoMAC-verified encrypted Allreduce over {WORLD} ranks ==\n");
    let verdicts = Simulator::new(WORLD).run(|comm| {
        let mut keys = CommKeys::generate(WORLD, 0xFEED, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let homac = Homac::generate(0x7A65, Backend::best_available());
        let mut scratch = Scratch::default();

        let data: Vec<u32> = (0..6).map(|j| comm.rank() as u32 * 100 + j).collect();

        // Encrypt + tag; the network reduces the (c, σ) pairs.
        keys.advance();
        let mut ct = data.clone();
        IntSum::encrypt_in_place(&keys, 0, &mut ct, &mut scratch);
        let tags = homac.tag(&keys, 0, &ct);
        let agg = comm.allreduce(&ct, |a, b| a.wrapping_add(*b));
        let sigma = comm.allreduce(&tags, |a, b| Homac::combine(*a, *b));

        // 1) Honest network: verification passes, result decrypts exactly.
        let honest = homac.verify(&keys, 0, &agg, &sigma);
        let mut result = agg.clone();
        IntSum::decrypt_in_place(&keys, 0, &mut result, &mut scratch);
        let expected: Vec<u32> = (0..6)
            .map(|j| (0..WORLD as u32).map(|r| r * 100 + j).sum())
            .collect();
        assert_eq!(result, expected);

        // 2) Bit-flip attack on the aggregate.
        let mut flipped = agg.clone();
        flipped[2] ^= 1;
        let detect_flip = !homac.verify(&keys, 0, &flipped, &sigma);

        // 3) Reordering attack (swap two reduced elements).
        let mut swapped = agg.clone();
        swapped.swap(0, 5);
        let detect_swap = !homac.verify(&keys, 0, &swapped, &sigma);

        // 4) Replay attack: serve last epoch's aggregate for this epoch.
        //    Advance to the next collective and check the stale pair fails.
        keys.advance();
        let detect_replay = !homac.verify(&keys, 0, &agg, &sigma);

        (honest, detect_flip, detect_swap, detect_replay)
    });

    for (rank, v) in verdicts.iter().enumerate() {
        println!(
            "rank {rank}: honest ✓ = {}, bit-flip caught = {}, swap caught = {}, replay caught = {}",
            v.0, v.1, v.2, v.3
        );
        assert!(v.0 && v.1 && v.2 && v.3);
    }
    println!(
        "\nOK: the tag channel costs {}x the 32-bit data channel ({}-bit field),",
        Homac::inflation_for_width(32),
        61
    );
    println!("the price §5.5 quotes for integrity on top of confidentiality.");
}
